#!/usr/bin/env python
"""CI smoke test for the latency-prediction serving layer.

Publishes a collaborative checkpoint to a throwaway registry, starts
the micro-batched :class:`repro.serve.service.PredictionService` and
asserts, end to end:

1. a mixed warm/cold/unknown request stream is answered with the
   expected miss mix, and micro-batched predictions are byte-identical
   to single-request (``max_batch=1``) predictions;
2. publishing a retrained checkpoint and calling ``refresh()`` is an
   atomic hot swap — the new version serves immediately, old responses
   were all answered by the old version, and routing an unpublished
   cluster falls back to ``default``;
3. a corrupt checkpoint file is detected by its digest, evicted, and
   the previous version serves in its place;
4. closing the service drains the ingress queue — every accepted
   future resolves, with ``shutdown``-cause flushes accounted;
5. the CLI ``repro serve`` / ``repro loadtest`` subcommands drive the
   same machinery end to end.

Writes a telemetry JSON-lines report (serve counters, flush causes,
queue-depth gauge included) to the path given as argv[1] (default
``benchmarks/results/serve-smoke-telemetry.jsonl``) so CI can upload
it as an artifact. Exits non-zero on any violation. Deliberately small
(tens of seconds) so the serve-gate CI job can afford it on every push.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import telemetry  # noqa: E402
from repro.cli import main as cli_main  # noqa: E402
from repro.core.collaborative import CollaborativeRepository  # noqa: E402
from repro.pipeline import build_paper_artifacts  # noqa: E402
from repro.serve import (  # noqa: E402
    ModelRegistry,
    PredictRequest,
    PredictionService,
)
from repro.serve.loadgen import LoadProfile, build_requests, run_load  # noqa: E402


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {message}")


def library_smoke() -> None:
    art = build_paper_artifacts(n_random_networks=20, n_devices=32)
    repo = CollaborativeRepository(art.dataset, art.suite, signature_size=6, seed=0)
    for device in art.dataset.device_names[:16]:
        repo.join(device, 0.5)

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as registry_dir:
        registry = ModelRegistry(registry_dir)
        checkpoint = repo.publish_checkpoint(registry)
        check(checkpoint.version == 1, "first publish is version 1")
        again = repo.publish_checkpoint(registry)
        check(
            again.version == 2 and again.key == checkpoint.key,
            "same training state re-publishes as v2 under the same content key",
        )

        profile = LoadProfile(
            n_requests=400,
            mode="closed",
            concurrency=4,
            cold_fraction=0.2,
            unknown_fraction=0.05,
            seed=3,
        )
        requests = build_requests(art.dataset, repo.signature_names, profile)
        with PredictionService(
            registry, list(art.suite), dataset=art.dataset,
            max_batch=32, max_wait_ms=1.0,
        ) as service:
            report = run_load(service, requests, profile)
            stats = service.batch_stats()
        check(
            report.n_requests == 400 and set(report.errors_by_reason) <= {"unknown_network"},
            f"mixed stream answered ({report.n_errors} unknown-network misses, "
            f"cold devices served via shipped signatures)",
        )
        check(
            stats.batches < 400 and stats.max_batch_seen > 1,
            f"requests were coalesced ({stats.batches} batches, "
            f"max size {stats.max_batch_seen})",
        )
        with PredictionService(
            registry, list(art.suite), dataset=art.dataset,
            max_batch=1, max_wait_ms=0.0,
        ) as single:
            single_report = run_load(single, requests, profile)
        check(
            report.digest() == single_report.digest(),
            "micro-batched predictions byte-identical to single-request",
        )

        # Hot swap: keep a service running, grow the membership,
        # publish, refresh — new version serves, atomically.
        service = PredictionService(
            registry, list(art.suite), dataset=art.dataset,
            max_batch=16, max_wait_ms=1.0,
        )
        try:
            probe = PredictRequest(
                network=art.dataset.network_names[0],
                device=art.dataset.device_names[0],
            )
            before = service.predict(probe)
            check(before.model_version == 2, "pre-swap requests served by v2")
            for device in art.dataset.device_names[16:24]:
                repo.join(device, 0.5)
            published = repo.publish_checkpoint(registry)
            still = service.predict(probe)
            check(
                still.model_version == 2,
                "publish alone does not change the serving model",
            )
            swapped = service.refresh()
            check(
                swapped == {"default": 3} and published.version == 3,
                "refresh() hot-swaps v3 in atomically",
            )
            after = service.predict(probe)
            check(after.model_version == 3, "post-swap requests served by v3")
            check(
                after.latency_ms != before.latency_ms,
                "retrained model actually changed the prediction",
            )
            fallback = service.predict(
                PredictRequest(
                    network=art.dataset.network_names[1],
                    device=art.dataset.device_names[1],
                    cluster="never-published",
                )
            )
            check(
                fallback.ok and fallback.served_cluster == "default",
                "unpublished cluster falls back to the default model",
            )

            # Corrupt the latest checkpoint on disk. The running
            # service keeps its already-loaded in-memory v3 (the
            # manifest digest did not change), but a fresh service
            # must detect the digest mismatch, evict v3 and serve the
            # surviving v2.
            latest = registry.latest("default")
            latest.path.write_bytes(b"not a checkpoint")
            service.refresh()
            unaffected = service.predict(probe)
            check(
                unaffected.model_version == 3,
                "running service keeps serving its loaded in-memory v3",
            )
        finally:
            service.close()

        with PredictionService(
            registry, list(art.suite), dataset=art.dataset,
        ) as fresh:
            recovered = fresh.predict(probe)
        check(
            recovered.model_version == 2,
            "fresh service evicts corrupt v3 and serves the surviving v2",
        )
        check(
            registry.latest("default").version == 2,
            "registry manifest no longer lists the corrupt version",
        )

        # Shutdown drain: submit a burst, close immediately — every
        # accepted future must still resolve.
        service = PredictionService(
            registry, list(art.suite), dataset=art.dataset,
            max_batch=64, max_wait_ms=50.0,
        )
        burst = art.dataset.network_names[:40]
        futures = [
            service.submit(
                PredictRequest(network=n, device=art.dataset.device_names[0])
            )
            for n in burst
        ]
        service.close()
        drained = [f.result(timeout=5.0) for f in futures]
        stats = service.batch_stats()
        check(
            all(r.ok for r in drained) and stats.completed == len(burst),
            f"close() drains the queue: all {len(burst)} in-flight futures resolved",
        )
        check(
            stats.flushes["shutdown"] >= 1 or stats.flushes["full"] >= 1,
            f"drain flushes accounted (causes: {stats.flushes})",
        )
        preds = np.array([r.latency_ms for r in drained])
        check(bool(np.isfinite(preds).all()), "drained predictions are finite")


def cli_smoke() -> None:
    import repro.cli as cli

    original = cli.build_paper_artifacts

    def small_builder(*, seed=0, cache_dir=None, **kwargs):
        return original(seed=seed, n_random_networks=8, n_devices=16, **kwargs)

    cli.build_paper_artifacts = small_builder
    try:
        with tempfile.TemporaryDirectory(prefix="serve-smoke-cli-") as registry_dir:
            argv = ["--no-cache", "serve", "--registry", registry_dir,
                    "--requests", "60", "--signature-size", "4",
                    "--max-batch", "16"]
            check(cli_main(argv) == 0, "CLI serve publishes and answers a stream")
            argv = ["--no-cache", "loadtest", "--registry", registry_dir,
                    "--requests", "120", "--signature-size", "4",
                    "--mode", "open", "--rate", "3000"]
            check(cli_main(argv) == 0, "CLI loadtest reuses the published registry")
    finally:
        cli.build_paper_artifacts = original


def main() -> int:
    out = Path(
        sys.argv[1]
        if len(sys.argv) > 1
        else REPO_ROOT / "benchmarks" / "results" / "serve-smoke-telemetry.jsonl"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    with telemetry.scoped_registry() as reg:
        library_smoke()
        cli_smoke()
        telemetry.write_report(out, reg)
    summary = telemetry.summarize(reg)["serve"]
    print(f"telemetry report: {out}")
    print(f"serve summary: {summary}")
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
