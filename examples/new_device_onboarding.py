"""Onboard a brand-new device with just 10 measurements.

The paper's deployment story: an app developer wants latency estimates
for a phone model nobody has characterized. Instead of measuring all
118 networks, they measure only the 10-network signature set, look the
rest up from the shared cost model, and get the full latency profile.

This script trains the global model on the 105-device fleet, then
simulates a *new* device (sampled outside that fleet), measures only
the signature set on it, and compares predicted vs measured latency
for all remaining networks.

Run:  python examples/new_device_onboarding.py
"""

from pathlib import Path

import numpy as np

from repro import build_paper_artifacts
from repro.core.cost_model import CostModel, default_regressor
from repro.core.representation import NetworkEncoder, SignatureHardwareEncoder
from repro.core.signature import select_signature_set
from repro.devices.catalog import build_fleet
from repro.devices.measurement import MeasurementHarness
from repro.ml.metrics import mape, r2_score, spearmanr

CACHE = Path(__file__).parent / ".cache"


def main() -> None:
    art = build_paper_artifacts(cache_dir=CACHE)

    print("Selecting a 10-network signature set (MIS)...")
    sig_idx = select_signature_set(art.dataset.latencies_ms, 10, "mis", rng=0)
    sig_names = [art.dataset.network_names[i] for i in sig_idx]
    print("  " + ", ".join(sig_names))

    print("Training the global cost model on all 105 fleet devices...")
    encoder = NetworkEncoder(list(art.suite))
    hw = SignatureHardwareEncoder(sig_names)
    model = CostModel(encoder, hw, default_regressor(0))
    device_hw = {
        d: hw.encode_from_dataset(art.dataset, d) for d in art.dataset.device_names
    }
    targets = [n for n in art.dataset.network_names if n not in sig_names]
    X, y = model.build_training_set(
        art.dataset, art.suite, device_hw, network_names=targets
    )
    model.fit(X, y)

    # A phone that was never part of the repository: sampled from a
    # larger fleet with a different seed.
    new_device = build_fleet(120, seed=2024)[111]
    print(f"\nNew device: {new_device.name}")
    print(f"  chipset {new_device.chipset}, CPU {new_device.cpu_model}, "
          f"{new_device.frequency_ghz} GHz, {new_device.dram_gb} GB DRAM")

    harness = MeasurementHarness(seed=1)
    print(f"Measuring only the {len(sig_names)} signature networks on it...")
    measured_sig = {
        name: harness.measure_ms(new_device, art.suite[name]) for name in sig_names
    }
    hw_vec = hw.encode_from_measurements(measured_sig)

    net_feats = encoder.encode_all([art.suite[n] for n in targets])
    predictions = model.predict(
        model.assemble(net_feats, np.tile(hw_vec, (len(targets), 1)))
    )
    # Ground truth: what a full characterization campaign would measure.
    actual = np.array(
        [harness.measure_ms(new_device, art.suite[n]) for n in targets]
    )

    print(f"\nPredicted full profile for {len(targets)} networks "
          f"from 10 measurements:")
    print(f"  R^2 (pred vs measured)      : {r2_score(actual, predictions):.3f}")
    print(f"  Spearman rank correlation   : {spearmanr(actual, predictions):.3f}")
    print(f"  mean absolute pct error     : {100 * mape(actual, predictions):.1f}%")
    print("\nSlowest five networks, predicted vs measured:")
    for i in np.argsort(actual)[-5:]:
        print(f"  {targets[i]:24s} measured {actual[i]:7.1f} ms   "
              f"predicted {predictions[i]:7.1f} ms")


if __name__ == "__main__":
    main()
