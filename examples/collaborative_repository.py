"""The Section-V collaborative repository protocol, end to end.

Devices join a shared repository one at a time, each contributing its
signature-set latencies plus measurements on 10% of networks. After
each join the global cost model is retrained and scored on *all*
networks for every member. The script prints the accuracy-vs-devices
curve (paper Figure 12) and closes with the Figure-13 comparison for
the Redmi Note 5 Pro: collaborative accuracy from 20 measurements vs an
isolated model needing the full suite.

Run:  python examples/collaborative_repository.py
"""

from pathlib import Path

from repro import build_paper_artifacts
from repro.core.collaborative import (
    collaborative_r2_for_device,
    isolated_learning_curve,
    simulate_collaboration,
)

CACHE = Path(__file__).parent / ".cache"


def main() -> None:
    art = build_paper_artifacts(cache_dir=CACHE)

    print("Running the collaborative simulation (devices join one by one,")
    print("each contributing the signature set + 10% of networks)...\n")
    records = simulate_collaboration(
        art.dataset,
        art.suite,
        contribution_fraction=0.1,
        n_iterations=50,
        signature_size=10,
        seed=0,
        evaluate_every=5,
    )
    print(f"{'devices':>8}  {'measurements':>12}  {'avg R^2':>8}")
    for record in records:
        bar = "#" * int(40 * max(record.avg_r2, 0.0))
        print(f"{record.n_devices:8d}  {record.n_training_points:12d}  "
              f"{record.avg_r2:8.3f}  {bar}")

    print("\n--- Figure 13: collaboration vs isolation (Redmi Note 5 Pro) ---")
    target = "redmi_note_5_pro"
    collab = collaborative_r2_for_device(
        art.dataset, art.suite, target,
        n_contributors=50, extra_networks_per_device=10, seed=0,
    )
    print(f"collaborative model, 20 measurements from the device: "
          f"R^2 = {collab:.3f}")

    print("isolated per-device model, growing training set:")
    curve = isolated_learning_curve(
        art.dataset, art.suite, target,
        train_sizes=[5, 10, 20, 40, 80, 110], seed=0,
    )
    crossover = None
    for size, score in curve:
        marker = " <- matches collaborative" if crossover is None and score >= collab else ""
        if marker:
            crossover = size
        print(f"  {size:4d} own measurements: R^2 = {score:.3f}{marker}")
    if crossover:
        print(f"\nIsolation needs ~{crossover} measurements to match what "
              f"collaboration achieves with 20 — a {crossover / 20:.0f}x saving.")


if __name__ == "__main__":
    main()
