"""Hardware-aware NAS with the cost model in the loop.

The paper argues generalizable cost models "could significantly improve
the search-time, and even the performance, of hardware-aware Neural
Architecture Search". This example runs that loop: generate 200
candidate networks from the mobile search space, rank them *per device*
with the trained cost model (no measurements of the candidates needed),
and verify the ranking against simulated ground truth.

It also shows why per-device ranking matters: the best candidate on a
dot-product flagship is not the best on an in-order budget core.

Run:  python examples/nas_latency_ranking.py
"""

from pathlib import Path

import numpy as np

from repro import build_paper_artifacts
from repro.core.cost_model import CostModel, default_regressor
from repro.core.representation import NetworkEncoder, SignatureHardwareEncoder
from repro.core.signature import select_signature_set
from repro.devices.measurement import MeasurementHarness
from repro.generator.random_gen import RandomNetworkGenerator
from repro.ml.metrics import spearmanr

CACHE = Path(__file__).parent / ".cache"
N_CANDIDATES = 200


def main() -> None:
    art = build_paper_artifacts(cache_dir=CACHE)

    print("Training the global signature-set cost model...")
    sig_idx = select_signature_set(art.dataset.latencies_ms, 10, "mis", rng=0)
    sig_names = [art.dataset.network_names[i] for i in sig_idx]
    encoder = NetworkEncoder(list(art.suite))
    hw = SignatureHardwareEncoder(sig_names)
    model = CostModel(encoder, hw, default_regressor(0))
    device_hw = {
        d: hw.encode_from_dataset(art.dataset, d) for d in art.dataset.device_names
    }
    X, y = model.build_training_set(art.dataset, art.suite, device_hw)
    model.fit(X, y)

    print(f"Generating {N_CANDIDATES} NAS candidates from the search space...")
    generator = RandomNetworkGenerator(seed=4242)
    candidates = generator.generate_many(N_CANDIDATES, prefix="cand")
    # Candidates deeper than the training population cannot be encoded.
    candidates = [c for c in candidates if c.n_layers <= encoder.max_layers]
    feats = encoder.encode_all(candidates)

    flagship = "device_027_snapdragon_855"
    budget = "device_004_snapdragon_625"
    harness = MeasurementHarness(seed=3)

    for device_name in (flagship, budget):
        device = art.fleet[device_name]
        hw_vec = device_hw[device_name]
        preds = model.predict(
            model.assemble(feats, np.tile(hw_vec, (len(candidates), 1)))
        )
        truth = np.array(
            [harness.measure_ms(device, c) for c in candidates]
        )
        rho = spearmanr(truth, preds)
        best = np.argsort(preds)[:3]
        true_rank = {i: r + 1 for r, i in enumerate(np.argsort(truth))}
        print(f"\n{device_name} ({device.cpu_model} @ {device.frequency_ghz} GHz)")
        print(f"  rank fidelity over {len(candidates)} candidates: "
              f"Spearman rho = {rho:.3f}")
        print("  predicted-fastest candidates (what NAS consumes is the rank;")
        print("  absolute ms drifts when extrapolating below the suite's range):")
        for i in best:
            print(f"    {candidates[i].name}: measured {truth[i]:6.1f} ms "
                  f"(true rank {true_rank[i]:3d}/{len(candidates)})")

    # Cross-device disagreement: rankings are device-specific.
    hw_a = device_hw[flagship]
    hw_b = device_hw[budget]
    pred_a = model.predict(model.assemble(feats, np.tile(hw_a, (len(candidates), 1))))
    pred_b = model.predict(model.assemble(feats, np.tile(hw_b, (len(candidates), 1))))
    print(f"\nCross-device ranking agreement (flagship vs budget): "
          f"rho = {spearmanr(pred_a, pred_b):.3f}")
    print("A single global ranking would mis-order candidates across devices —")
    print("which is exactly why the hardware representation matters.")


if __name__ == "__main__":
    main()
