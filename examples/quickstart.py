"""Quickstart: build the dataset, train a cost model, predict latency.

Reproduces the paper's core loop end to end:

1. build the 118-network suite and 105-device fleet,
2. run the measurement campaign (the "crowd-sourced Android app"),
3. pick a 10-network signature set with Mutual Information Selection,
4. train the XGBoost-style cost model on 70% of devices,
5. predict latencies for held-out devices and report R^2.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import build_paper_artifacts, device_split_evaluation

CACHE = Path(__file__).parent / ".cache"


def main() -> None:
    print("Building paper artifacts (118 networks x 105 devices)...")
    art = build_paper_artifacts(cache_dir=CACHE)
    print(f"  suite   : {len(art.suite)} networks")
    print(f"  fleet   : {len(art.fleet)} devices, "
          f"{len(art.fleet.cpu_histogram())} CPU families")
    summary = art.dataset.summary()
    print(f"  dataset : {int(summary['n_points'])} measurements, "
          f"median {summary['median_ms']:.0f} ms")

    print("\nTraining signature-set cost model (MIS, size 10)...")
    result = device_split_evaluation(
        art.dataset, art.suite, signature_size=10, method="mis", split_seed=7
    )
    print(f"  signature set : {', '.join(result.signature_names)}")
    print(f"  test devices  : {len(result.test_devices)} (unseen during training)")
    print(f"  test R^2      : {result.r2:.3f}   (paper Figure 9: 0.944)")
    print(f"  test RMSE     : {result.rmse_ms:.1f} ms")

    print("\nSample predictions on one held-out device:")
    device = result.test_devices[0]
    for i in range(5):
        print(f"  {device}: actual {result.y_true[i]:8.1f} ms   "
              f"predicted {result.y_pred[i]:8.1f} ms")


if __name__ == "__main__":
    main()
