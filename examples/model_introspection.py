"""Look inside the cost model: gain attribution and persistence.

Two things a practitioner deploying the paper's system wants to know:

1. *What is the model actually using?* We train two cost models — one
   with the signature-set hardware representation, one with static
   specs — and attribute each model's split gain to its input blocks.
   The signature model spends most of its gain on the ten measured
   latencies; the static model starves its sparse hardware one-hots and
   leans almost entirely on network features, which is exactly why it
   cannot rank unseen devices (paper Figure 8).

2. *Can I ship the trained model?* We save the signature model to a
   single pickle-free ``.npz`` and reload it, verifying predictions
   match bit-for-bit.

Run:  python examples/model_introspection.py
"""

from pathlib import Path

import numpy as np

from repro import build_paper_artifacts
from repro.analysis.importance import importance_breakdown
from repro.core.cost_model import CostModel, default_regressor
from repro.core.persistence import load_cost_model, save_cost_model
from repro.core.representation import (
    NetworkEncoder,
    SignatureHardwareEncoder,
    StaticHardwareEncoder,
)
from repro.core.signature import select_signature_set

CACHE = Path(__file__).parent / ".cache"


def main() -> None:
    art = build_paper_artifacts(cache_dir=CACHE)
    encoder = NetworkEncoder(list(art.suite))

    print("Training the signature-set model (MIS, size 10)...")
    sig_idx = select_signature_set(art.dataset.latencies_ms, 10, "mis", rng=0)
    sig_names = [art.dataset.network_names[i] for i in sig_idx]
    sig_hw = SignatureHardwareEncoder(sig_names)
    sig_model = CostModel(encoder, sig_hw, default_regressor(0))
    device_hw = {
        d: sig_hw.encode_from_dataset(art.dataset, d)
        for d in art.dataset.device_names
    }
    targets = [n for n in art.dataset.network_names if n not in sig_names]
    X, y = sig_model.build_training_set(
        art.dataset, art.suite, device_hw, network_names=targets
    )
    sig_model.fit(X, y)

    print("Training the static-spec model...")
    static_hw = StaticHardwareEncoder.from_devices(list(art.fleet))
    static_model = CostModel(encoder, static_hw, default_regressor(0))
    static_device_hw = {d.name: static_hw.encode(d) for d in art.fleet}
    Xs, ys = static_model.build_training_set(
        art.dataset, art.suite, static_device_hw, network_names=targets
    )
    static_model.fit(Xs, ys)

    print("\n--- Gain attribution (fraction of total split gain) ---")
    for label, model in (("signature", sig_model), ("static", static_model)):
        breakdown = importance_breakdown(model)
        print(f"\n{label} model: network block {breakdown.network_share:.2f}, "
              f"hardware block {breakdown.hardware_share:.2f}")
        top = list(breakdown.hardware_features.items())[:5]
        for name, share in top:
            print(f"    {name:32s} {share:.3f}")

    print("\n--- Persistence round-trip ---")
    path = CACHE / "signature_model.npz"
    save_cost_model(sig_model, path)
    loaded = load_cost_model(path)
    sample = X[:256]
    assert np.allclose(loaded.predict(sample), sig_model.predict(sample))
    size_kb = path.stat().st_size / 1024
    print(f"saved to {path.name} ({size_kb:.0f} KiB), reloaded, predictions "
          "identical")


if __name__ == "__main__":
    main()
