"""Tests for the sharded fleet-scale repository: the npz shard store,
the streaming facade, memory-bounded collection, streaming admission,
and per-shard warm-start training merged through the model registry.

The load-bearing contract throughout is byte-identity: every cell's
noise stream is keyed by ``(seed, device, network)`` names only, so a
shard must equal the matching slice of a monolithic campaign
bit-for-bit — on any backend, at any batch size.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.core.collaborative import (
    CollaborativeRepository,
    train_sharded_repository,
)
from repro.dataset.collection import collect_dataset
from repro.dataset.sharded import (
    SHARD_KEYS,
    ResidencyBudgetExceeded,
    ShardStore,
    ShardedLatencyDataset,
    collect_sharded_dataset,
    partition_fleet,
    shard_key,
)
from repro.devices import build_fleet
from repro.devices.measurement import MeasurementHarness
from repro.faults import FaultPlan, RetryPolicy
from repro.generator.suite import BenchmarkSuite
from repro.serve.registry import ModelRegistry
from repro.trust import AdmissionController

N_DEVICES = 16  # 8 core-family clusters, the largest holding 6 devices


@pytest.fixture(scope="module")
def suite():
    return BenchmarkSuite.default(n_random=2, seed=0)  # 18 zoo + 2 random


@pytest.fixture(scope="module")
def fleet():
    return build_fleet(N_DEVICES, seed=0)


def _harness():
    return MeasurementHarness(seed=0, runs=3)


@pytest.fixture(scope="module")
def faulty_campaign(tmp_path_factory, suite, fleet):
    """One sharded + one monolithic campaign under the same fault plan.

    ``FaultPlan(seed=4, device_dropout=0.2)`` permanently drops three
    of the sixteen devices — two of them inside multi-member core
    clusters — so both campaigns carry quarantined all-NaN rows and the
    training loop exercises its skip path (the satellite-5 fixture).
    """
    plan = FaultPlan(seed=4, device_dropout=0.2)
    policy = RetryPolicy()
    view = collect_sharded_dataset(
        suite,
        fleet,
        _harness(),
        store_root=tmp_path_factory.mktemp("shard-store"),
        shard_by="core",
        fault_plan=plan,
        retry_policy=policy,
    )
    dense = collect_dataset(
        suite, fleet, _harness(), fault_plan=plan, retry_policy=policy
    )
    return view, dense


# -- partitioning -------------------------------------------------------


class TestPartition:
    def test_shard_key_dispatch(self, fleet):
        device = list(fleet)[0]
        assert shard_key(device, "chipset") == device.chipset
        assert shard_key(device, "core") == device.cpu_model
        with pytest.raises(ValueError, match="shard_by"):
            shard_key(device, "vendor")

    def test_partition_is_sorted_and_order_preserving(self, fleet):
        groups = partition_fleet(fleet, "core")
        assert list(groups) == sorted(groups)
        fleet_order = {d.name: i for i, d in enumerate(fleet)}
        for members in groups.values():
            indices = [fleet_order[d.name] for d in members]
            assert indices == sorted(indices)
        assert sum(len(m) for m in groups.values()) == len(list(fleet))

    def test_every_key_is_supported(self, fleet):
        for by in SHARD_KEYS:
            assert partition_fleet(fleet, by)


# -- the npz store ------------------------------------------------------


def _tiny_store(root, networks=("net_a", "net_b", "net_c")):
    store = ShardStore(root)
    store.initialize(list(networks), "chipset")
    return store


class TestShardStore:
    def test_append_and_roundtrip_with_nan(self, tmp_path):
        store = _tiny_store(tmp_path)
        rows = np.array([[1.0, np.nan, 3.0], [np.nan, np.nan, np.nan]])
        store.append_chunk("soc_x", ["dev_a", "dev_b"], rows)
        (chunk,) = store.iter_chunks("soc_x")
        devices, indptr, cols, values = chunk
        assert devices == ["dev_a", "dev_b"]
        assert indptr.tolist() == [0, 2, 2]  # the all-NaN row stores nothing
        assert cols.tolist() == [0, 2] and values.tolist() == [1.0, 3.0]
        shard = ShardedLatencyDataset(store).shard("soc_x")
        assert np.array_equal(shard.latencies_ms, rows, equal_nan=True)

    def test_reinitialize_compatible_is_idempotent(self, tmp_path):
        store = _tiny_store(tmp_path)
        store.append_chunk("soc_x", ["dev"], np.array([[1.0, 2.0, 3.0]]))
        again = ShardStore(tmp_path)
        again.initialize(["net_a", "net_b", "net_c"], "chipset")
        assert again.clusters() == ["soc_x"]

    def test_reinitialize_incompatible_raises(self, tmp_path):
        _tiny_store(tmp_path)
        with pytest.raises(ValueError, match="different"):
            ShardStore(tmp_path).initialize(["other_net"], "chipset")
        with pytest.raises(ValueError, match="different"):
            ShardStore(tmp_path).initialize(
                ["net_a", "net_b", "net_c"], "core"
            )

    def test_bad_shard_by_raises(self, tmp_path):
        with pytest.raises(ValueError, match="shard_by"):
            ShardStore(tmp_path).initialize(["net_a"], "vendor")

    def test_shape_mismatch_raises(self, tmp_path):
        store = _tiny_store(tmp_path)
        with pytest.raises(ValueError, match="rows"):
            store.append_chunk("soc_x", ["dev"], np.ones((1, 2)))
        with pytest.raises(ValueError, match="rows"):
            store.append_chunk("soc_x", ["a", "b"], np.ones((1, 3)))

    def test_mark_complete_and_shard_info(self, tmp_path):
        store = _tiny_store(tmp_path)
        store.append_chunk("soc_x", ["dev"], np.ones((1, 3)))
        assert not store.is_complete("soc_x")
        store.mark_complete("soc_x")
        assert store.is_complete("soc_x")
        assert ShardStore(tmp_path).is_complete("soc_x")  # persisted
        info = store.shard_info("soc_x")
        assert info["chunks"] == 1 and info["n_devices"] == 1
        assert info["observed"] == 3
        with pytest.raises(KeyError):
            store.shard_info("soc_unknown")
        with pytest.raises(KeyError):
            store.mark_complete("soc_unknown")

    def test_no_temp_files_left(self, tmp_path):
        store = _tiny_store(tmp_path)
        store.append_chunk("soc x/odd", ["dev"], np.ones((1, 3)))
        strays = [p for p in tmp_path.rglob("*") if ".tmp" in p.name]
        assert strays == []

    def test_unsupported_manifest_version_raises(self, tmp_path):
        store = _tiny_store(tmp_path)
        payload = json.loads(store.manifest_path.read_text())
        payload["version"] = 99
        store.manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            ShardStore(tmp_path).network_names

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardStore(tmp_path / "nowhere").network_names

    def test_corrupt_chunk_detected(self, tmp_path):
        store = _tiny_store(tmp_path)
        path = store.append_chunk("soc_x", ["dev"], np.ones((1, 3)))
        with np.load(path) as data:
            arrays = dict(data)
        arrays["indptr"] = np.array([0, 7], dtype=np.int64)  # lies
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="corrupt"):
            list(store.iter_chunks("soc_x"))


# -- the streaming facade ----------------------------------------------


@pytest.fixture()
def synthetic_view(tmp_path):
    """Three hand-built shards with a quarantined row and a NaN cell."""
    store = _tiny_store(tmp_path)
    store.append_chunk("soc_a", ["a0", "a1"], np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]))
    store.append_chunk("soc_b", ["b0"], np.array([[np.nan, np.nan, np.nan]]))
    store.append_chunk("soc_c", ["c0"], np.array([[7.0, np.nan, 9.0]]))
    store.append_chunk("soc_c", ["c1"], np.array([[10.0, 11.0, 12.0]]))
    return ShardedLatencyDataset(store)


class TestShardedFacade:
    def test_shape_accounting(self, synthetic_view):
        view = synthetic_view
        assert (view.n_devices, view.n_networks, view.n_shards) == (5, 3, 3)
        assert view.clusters() == ["soc_a", "soc_b", "soc_c"]
        assert view.shard_device_names("soc_c") == ["c0", "c1"]
        assert list(view.iter_device_names()) == ["a0", "a1", "b0", "c0", "c1"]
        assert view.observed_cells() == 11

    def test_cluster_of(self, synthetic_view):
        assert synthetic_view.cluster_of("c1") == "soc_c"
        with pytest.raises(KeyError):
            synthetic_view.cluster_of("nobody")

    def test_completeness_matches_dense(self, synthetic_view):
        fractions = synthetic_view.device_completeness()
        dense = synthetic_view.to_dataset().device_completeness()
        assert fractions == dense
        assert fractions["b0"] == 0.0 and fractions["c0"] == pytest.approx(2 / 3)

    def test_summary_matches_dense(self, synthetic_view):
        summary = synthetic_view.summary()
        dense = synthetic_view.to_dataset()
        observed = dense.latencies_ms[~np.isnan(dense.latencies_ms)]
        assert summary["n_devices"] == 5 and summary["n_shards"] == 3
        assert summary["latency_min_ms"] == observed.min()
        assert summary["latency_max_ms"] == observed.max()
        assert summary["latency_mean_ms"] == pytest.approx(observed.mean())
        assert summary["observed_fraction"] == pytest.approx(11 / 15)

    def test_empty_network_completeness_is_empty(self, tmp_path):
        store = ShardStore(tmp_path)
        store.initialize([], "chipset")
        assert ShardedLatencyDataset(store).device_completeness() == {}

    def test_lru_keeps_one_shard_without_budget(self, synthetic_view):
        view = synthetic_view
        with telemetry.scoped_registry() as reg:
            view.shard("soc_a")
            view.shard("soc_a")  # hit
            view.shard("soc_b")  # evicts soc_a (unbudgeted: 1 resident)
            view.shard("soc_a")  # miss again
            assert reg.counter_value("sharded.shard_hit") == 1
            assert reg.counter_value("sharded.shard_miss") == 3
            assert reg.counter_value("sharded.shard_evict") >= 1

    def test_generous_budget_keeps_shards_resident(self, synthetic_view):
        view = synthetic_view
        view.max_resident_mb = 100.0
        with telemetry.scoped_registry() as reg:
            view.shard("soc_a")
            view.shard("soc_b")
            view.shard("soc_a")  # still cached
            assert reg.counter_value("sharded.shard_hit") == 1
            assert reg.counter_value("sharded.shard_evict") == 0

    def test_to_dataset_refuses_over_budget(self, synthetic_view):
        view = synthetic_view
        view.max_resident_mb = 5 * 3 * 8 / 1e6 / 2  # half the dense size
        with pytest.raises(ResidencyBudgetExceeded, match="residency budget"):
            view.to_dataset()


# -- memory-bounded collection -----------------------------------------


class TestShardedCollection:
    def test_spans_at_least_three_clusters(self, faulty_campaign):
        view, _ = faulty_campaign
        assert view.n_shards >= 3

    def test_shards_match_monolithic_campaign_bitwise(self, faulty_campaign):
        """Satellite 5: every shard equals the same slice of the
        in-memory campaign byte-for-byte, quarantined NaN rows
        included."""
        view, dense = faulty_campaign
        assert view.network_names == dense.network_names
        row_of = {name: i for i, name in enumerate(dense.device_names)}
        quarantined_rows = 0
        for cluster in view.clusters():
            shard = view.shard(cluster)
            expected = dense.latencies_ms[
                [row_of[name] for name in shard.device_names]
            ]
            assert shard.latencies_ms.tobytes() == expected.tobytes()
            quarantined_rows += int(
                np.isnan(shard.latencies_ms).all(axis=1).sum()
            )
        assert sorted(view.iter_device_names()) == sorted(dense.device_names)
        assert quarantined_rows >= 1  # the fault plan really dropped devices

    def test_batched_collection_is_byte_identical(
        self, tmp_path, suite, fleet, faulty_campaign
    ):
        # A residency budget small enough to force multi-batch shards
        # must not change a single byte.
        view, _ = faulty_campaign
        plan = FaultPlan(seed=4, device_dropout=0.2)
        budget = 0.05  # MB -> ~2 devices per batch at 20 networks
        batched = collect_sharded_dataset(
            suite,
            fleet,
            _harness(),
            store_root=tmp_path / "batched",
            shard_by="core",
            max_resident_mb=budget,
            fault_plan=plan,
            retry_policy=RetryPolicy(),
        )
        biggest = max(batched.clusters(), key=lambda c: len(batched.shard_device_names(c)))
        assert batched.store.shard_info(biggest)["chunks"] > 1
        for cluster in view.clusters():
            assert (
                batched.shard(cluster).latencies_ms.tobytes()
                == view.shard(cluster).latencies_ms.tobytes()
            )

    def test_thread_backend_is_byte_identical(
        self, tmp_path, suite, fleet, faulty_campaign
    ):
        view, _ = faulty_campaign
        clusters = view.clusters()[:2]
        threaded = collect_sharded_dataset(
            suite,
            fleet,
            _harness(),
            store_root=tmp_path / "threaded",
            shard_by="core",
            backend="thread",
            jobs=2,
            fault_plan=FaultPlan(seed=4, device_dropout=0.2),
            retry_policy=RetryPolicy(),
            clusters=clusters,
        )
        for cluster in clusters:
            assert (
                threaded.shard(cluster).latencies_ms.tobytes()
                == view.shard(cluster).latencies_ms.tobytes()
            )

    def test_completed_shards_are_skipped_on_rerun(
        self, tmp_path, suite, fleet
    ):
        root = tmp_path / "store"
        first = collect_sharded_dataset(
            suite, fleet, _harness(), store_root=root, shard_by="core",
            clusters=list(partition_fleet(fleet, "core"))[:2],
        )
        assert first.n_shards == 2
        with telemetry.scoped_registry() as reg:
            full = collect_sharded_dataset(
                suite, fleet, _harness(), store_root=root, shard_by="core"
            )
            assert reg.counter_value("sharded.shard_skipped") == 2
        assert full.n_shards == len(partition_fleet(fleet, "core"))
        assert sorted(full.iter_device_names()) == sorted(
            d.name for d in fleet
        )

    def test_interrupted_shard_is_topped_up(self, tmp_path, suite, fleet):
        # Pre-write a partial shard (as an interrupted campaign would)
        # and check the rerun measures only the missing devices.
        groups = partition_fleet(fleet, "core")
        cluster = max(groups, key=lambda c: len(groups[c]))
        devices = groups[cluster]
        assert len(devices) >= 3
        root = tmp_path / "store"
        seeded = collect_sharded_dataset(
            suite,
            build_fleet(N_DEVICES, seed=0),
            _harness(),
            store_root=root,
            shard_by="core",
            clusters=[cluster],
        )
        # Truncate the manifest's completion flag to simulate the
        # interruption: keep the chunk, drop the completed mark.
        store = ShardStore(root)
        payload = json.loads(store.manifest_path.read_text())
        payload["shards"][cluster].pop("complete", None)
        store.manifest_path.write_text(json.dumps(payload))
        # Drop one device's rows by rewriting the chunk without it.
        (chunk_path,) = ShardStore(root).chunk_paths(cluster)
        kept = seeded.shard(cluster)
        short = kept.latencies_ms[:-1]
        chunk_path.unlink()
        fresh = ShardStore(root)
        info = json.loads(fresh.manifest_path.read_text())
        info["shards"][cluster].update(chunks=0, n_devices=0, observed=0)
        fresh.manifest_path.write_text(json.dumps(info))
        ShardStore(root).append_chunk(cluster, kept.device_names[:-1], short)

        with telemetry.scoped_registry() as reg:
            resumed = collect_sharded_dataset(
                suite, fleet, _harness(), store_root=root,
                shard_by="core", clusters=[cluster],
            )
            assert reg.counter_value("sharded.shard_resumed") == 1
        topped = resumed.shard(cluster)
        assert topped.device_names == kept.device_names  # order preserved
        assert topped.latencies_ms.tobytes() == kept.latencies_ms.tobytes()

    def test_unknown_cluster_restriction_raises(self, tmp_path, suite, fleet):
        with pytest.raises(ValueError, match="no devices"):
            collect_sharded_dataset(
                suite, fleet, _harness(),
                store_root=tmp_path / "s", shard_by="core",
                clusters=["not-a-core"],
            )

    def test_enforce_budget_raises_when_rss_exceeds(
        self, tmp_path, suite, fleet
    ):
        # The test process's peak RSS is far beyond 1 MB, so an
        # enforced 1 MB budget must trip after the first shard.
        with pytest.raises(ResidencyBudgetExceeded, match="peak RSS"):
            collect_sharded_dataset(
                suite, fleet, _harness(),
                store_root=tmp_path / "s", shard_by="core",
                max_resident_mb=1.0, enforce_budget=True,
                clusters=list(partition_fleet(fleet, "core"))[:1],
            )

    def test_on_shard_hook_sees_resident_shards(self, tmp_path, suite, fleet):
        seen = []
        clusters = list(partition_fleet(fleet, "core"))[:2]
        collect_sharded_dataset(
            suite, fleet, _harness(),
            store_root=tmp_path / "s", shard_by="core", clusters=clusters,
            on_shard=lambda cluster, shard: seen.append(
                (cluster, shard.n_devices)
            ),
        )
        assert [c for c, _ in seen] == clusters
        assert all(n >= 1 for _, n in seen)

    def test_resume_without_checkpoint_dir_raises(self, tmp_path):
        from repro.pipeline import build_sharded_artifacts

        with pytest.raises(ValueError, match="checkpoint_dir"):
            build_sharded_artifacts(
                store_dir=tmp_path / "s", n_random_networks=1,
                n_devices=2, resume=True,
            )


# -- streaming admission -----------------------------------------------


class TestStreamingAdmission:
    def test_shard_summaries_accumulate(self, faulty_campaign, suite):
        view, _ = faulty_campaign
        controller = AdmissionController(())
        signature = tuple(view.network_names[:6])
        controller.bind(signature)
        total = 0
        for cluster in view.clusters():
            decisions = controller.submit_shard_dataset(
                cluster, view.shard(cluster)
            )
            total += len(decisions)
            summary = controller.shard_summaries[cluster]
            assert summary["n_contributions"] == len(decisions)
            assert (
                summary["n_admitted"] + summary["n_rejected"]
                == summary["n_contributions"]
            )
        assert total == view.n_devices
        assert len(controller.decisions) == total
        assert list(controller.shard_summaries) == view.clusters()

    def test_quarantined_rows_fail_schema_not_crash(self, faulty_campaign):
        view, dense = faulty_campaign
        controller = AdmissionController(())
        controller.bind(tuple(view.network_names[:6]))
        nan_devices = {
            name
            for name, i in zip(
                dense.device_names, range(dense.n_devices)
            )
            if np.isnan(dense.latencies_ms[i]).all()
        }
        assert nan_devices
        for cluster in view.clusters():
            for decision in controller.submit_shard_dataset(
                cluster, view.shard(cluster)
            ):
                if decision.device_name in nan_devices:
                    assert not decision.admitted
                    assert "schema" in decision.reasons

    def test_peer_context_carries_across_shards(self, faulty_campaign):
        view, _ = faulty_campaign
        controller = AdmissionController(())
        controller.bind(tuple(view.network_names[:6]))
        admitted_after = []
        for cluster in view.clusters():
            controller.submit_shard_dataset(cluster, view.shard(cluster))
            admitted_after.append(len(controller._profiles))
        # Profiles accumulate monotonically: later shards are screened
        # against the peers earlier shards admitted.
        assert admitted_after == sorted(admitted_after)
        assert admitted_after[-1] > 0


# -- per-shard training and registry merge -----------------------------


class TestTrainShardedRepository:
    @pytest.fixture()
    def trained(self, tmp_path, faulty_campaign, suite):
        view, _ = faulty_campaign
        registry = ModelRegistry(tmp_path / "registry")
        report = train_sharded_repository(
            view, suite, registry, signature_size=6, seed=0
        )
        return view, registry, report

    def test_publishes_per_cluster_plus_default(self, trained):
        view, registry, report = trained
        trained_clusters = {r.cluster for r in report.shards}
        assert trained_clusters  # at least one shard trained
        assert set(registry.clusters()) == trained_clusters | {"default"}
        assert report.default_cluster in trained_clusters
        # The default route is the biggest shard's model.
        biggest = max(report.shards, key=lambda r: (r.n_devices, r.cluster))
        assert report.shard(report.default_cluster).n_devices == biggest.n_devices

    def test_unseen_cluster_routes_to_default(self, trained):
        _, registry, report = trained
        checkpoint = registry.resolve("never-benchmarked-soc")
        assert checkpoint is not None and checkpoint.cluster == "default"
        assert registry.load(checkpoint) is not None

    def test_quarantined_devices_are_skipped(self, trained):
        view, _, report = trained
        n_total = view.n_devices
        accounted = sum(r.n_devices + r.n_skipped + r.n_rejected for r in report.shards)
        # Shards whose every device was quarantined never make a record.
        assert accounted <= n_total
        assert sum(r.n_skipped for r in report.shards) >= 1

    def test_shard_model_matches_in_memory_fit_bitwise(
        self, trained, suite
    ):
        """A published shard model predicts byte-identically to an
        in-memory CollaborativeRepository fit over the same members."""
        view, registry, report = trained
        record = max(report.shards, key=lambda r: (r.n_devices, r.cluster))
        shard_ds = view.shard(record.cluster)
        repo = CollaborativeRepository(
            shard_ds, suite, seed=0,
            signature_names=list(report.signature_names),
        )
        for device in shard_ds.device_names:
            if repo.device_has_signature(device):
                repo.join(device, 0.1)
        in_memory = repo.train(regressor_seed=0)
        loaded = registry.load(registry.resolve(record.cluster))
        enc = repo.encoded_suite
        device = next(iter(repo.contributions))
        hw = repo.hw_encoder.encode_from_dataset(shard_ds, device)
        X = np.hstack([enc.matrix, np.tile(hw, (enc.matrix.shape[0], 1))])
        assert np.array_equal(in_memory.predict(X), loaded.predict(X))

    def test_report_lookup_raises_for_unknown(self, trained):
        _, _, report = trained
        with pytest.raises(KeyError):
            report.shard("nope")
        assert report.n_devices == sum(r.n_devices for r in report.shards)

    def test_warm_start_batches_counted(self, tmp_path, faulty_campaign, suite):
        view, _ = faulty_campaign
        registry = ModelRegistry(tmp_path / "registry")
        with telemetry.scoped_registry() as reg:
            report = train_sharded_repository(
                view, suite, registry,
                signature_size=6, seed=0,
                warm_batch_devices=2, incremental_trees=4,
            )
            counted = reg.counter_value("sharded.warm_start_batches")
        for record in report.shards:
            expected = (
                0
                if record.n_devices <= 2
                else -(-(record.n_devices - 2) // 2)  # ceil division
            )
            assert record.n_warm_batches == expected
        total_warm = sum(r.n_warm_batches for r in report.shards)
        assert total_warm >= 1  # the 6-device core shard warm-starts
        assert counted == total_warm

    def test_admission_screens_every_shard(self, tmp_path, faulty_campaign, suite):
        view, _ = faulty_campaign
        registry = ModelRegistry(tmp_path / "registry")
        controller = AdmissionController(())
        report = train_sharded_repository(
            view, suite, registry,
            signature_size=6, seed=0, admission=controller,
        )
        assert controller.signature_names == report.signature_names
        # Every cluster got a shard summary, even quarantine-only ones.
        assert set(controller.shard_summaries) == set(view.clusters())
        for record in report.shards:
            summary = controller.shard_summaries[record.cluster]
            assert summary["n_contributions"] == record.n_devices + record.n_rejected
            assert summary["n_rejected"] == record.n_rejected

    def test_explicit_signature_names_validated(self, faulty_campaign, suite, tmp_path):
        view, _ = faulty_campaign
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(ValueError, match="signature network"):
            train_sharded_repository(
                view, suite, registry,
                signature_names=["not_a_network"], seed=0,
            )

    def test_empty_store_raises(self, tmp_path, suite):
        store = ShardStore(tmp_path / "empty")
        store.initialize([str(n) for n in suite.names], "chipset")
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(ValueError, match="no shards"):
            train_sharded_repository(
                ShardedLatencyDataset(store), suite, registry
            )


# -- CLI surface --------------------------------------------------------


class TestShardCli:
    def test_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["shard"])
        assert args.command == "shard"
        assert args.shard_by == "chipset"
        assert args.max_resident_mb is None
        assert not args.enforce_budget and not args.train

    def test_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "shard", "--store", "x", "--shard-by", "core",
                "--max-resident-mb", "64", "--enforce-budget",
                "--devices", "12", "--networks", "3",
                "--train", "--registry", "r", "--signature-size", "4",
                "--warm-batch-devices", "2", "--incremental-trees", "8",
            ]
        )
        assert args.shard_by == "core"
        assert args.max_resident_mb == 64.0
        assert args.enforce_budget and args.train
        assert args.warm_batch_devices == 2

    def test_bad_shard_key_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "--shard-by", "vendor"])
