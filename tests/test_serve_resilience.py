"""Tests for the serving-plane resilience layer (repro.serve.resilience):
seeded fault-plan grammar and determinism, bounded admission and deadline
shedding, circuit-breaker trip -> probe -> recover sequencing, the
degraded fallback chain (stale -> default -> static) with served_by
tagging, registry fault injection, concurrent corrupt-checkpoint
eviction, and the clean-path byte-identity contract."""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from types import SimpleNamespace

import numpy as np
import pytest

from repro import telemetry
from repro.core.collaborative import CollaborativeRepository
from repro.serve import (
    DEFAULT_CLUSTER,
    MicroBatcher,
    ModelRegistry,
    PredictRequest,
    PredictionService,
)
from repro.serve.loadgen import LoadProfile, build_requests, run_load
from repro.serve.registry import RegistryIOError
from repro.serve.resilience import (
    CircuitBreaker,
    DeadlineExceeded,
    Overloaded,
    ResilienceConfig,
    ServeFaultPlan,
    StaticEstimator,
    fit_static_estimate,
)
from repro.serve.service import (
    MISS_DEADLINE,
    MISS_DEGRADED,
    MISS_OVERLOADED,
)


@pytest.fixture(scope="module")
def trained(small_suite, small_dataset):
    """A 12-member collaborative repository and its trained model."""
    repo = CollaborativeRepository(
        small_dataset, small_suite, signature_size=5, seed=0
    )
    for device in small_dataset.device_names[:12]:
        repo.join(device, 0.5)
    model = repo.train(regressor_seed=0)
    return SimpleNamespace(repo=repo, model=model)


def publish(reg, trained, dataset, *, cluster=DEFAULT_CLUSTER, tag=0):
    """Publish the pre-trained model with publish-time static estimates."""
    static = fit_static_estimate(
        dataset, trained.repo.signature_names, sorted(trained.repo.contributions)
    )
    return reg.publish(
        trained.model,
        {"members": 12, "tag": tag},
        cluster=cluster,
        metadata={"static_estimate": static},
    )


def warm_request(dataset, *, cluster=DEFAULT_CLUSTER, k=0):
    return PredictRequest(
        network=dataset.network_names[k % dataset.n_networks],
        device=dataset.device_names[0],
        cluster=cluster,
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# ServeFaultPlan


class TestServeFaultPlan:
    def test_from_spec_grammar_and_aliases(self):
        plan = ServeFaultPlan.from_spec(
            "seed=7, slow_flush=0.5, slow_flush_ms=25, corrupt_checkpoint=0.1,"
            "registry_io=0.2, predict_fail=0.3, predict_fail_limit=4"
        )
        assert plan.seed == 7
        assert plan.slow_flush_probability == 0.5
        assert plan.slow_flush_ms == 25.0
        assert plan.checkpoint_corrupt_probability == 0.1
        assert plan.registry_io_probability == 0.2
        assert plan.predict_failure_probability == 0.3
        assert plan.predict_failure_limit == 4

    def test_from_spec_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ValueError, match="unknown serve fault spec key"):
            ServeFaultPlan.from_spec("bogus=1")
        with pytest.raises(ValueError, match="not key=value"):
            ServeFaultPlan.from_spec("seed")
        with pytest.raises(ValueError, match="must be in"):
            ServeFaultPlan.from_spec("predict_fail=1.5")

    def test_draw_is_deterministic_per_entity_and_attempt(self):
        a = ServeFaultPlan(seed=3, predict_failure_probability=0.5)
        b = ServeFaultPlan(seed=3, predict_failure_probability=0.5)
        seq_a = [a.draw("predict", "m-v1") for _ in range(40)]
        seq_b = [b.draw("predict", "m-v1") for _ in range(40)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)
        # A different entity gets an independent decision stream.
        c = ServeFaultPlan(seed=3, predict_failure_probability=0.5)
        assert [c.draw("predict", "m-v2") for _ in range(40)] != seq_a

    def test_draw_is_thread_safe_and_deterministic_as_a_multiset(self):
        plan = ServeFaultPlan(seed=1, predict_failure_probability=0.5)
        hits = []
        lock = threading.Lock()

        def worker():
            mine = [plan.draw("predict", "e") for _ in range(50)]
            with lock:
                hits.extend(mine)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reference = ServeFaultPlan(seed=1, predict_failure_probability=0.5)
        expected = sum(reference.draw("predict", "e") for _ in range(200))
        assert sum(hits) == expected

    def test_injection_limit_stops_failures_deterministically(self):
        plan = ServeFaultPlan(
            seed=0, predict_failure_probability=1.0, predict_failure_limit=3
        )
        draws = [plan.draw("predict", "m-v1") for _ in range(10)]
        assert draws == [True] * 3 + [False] * 7
        plan.reset()
        assert plan.draw("predict", "m-v1") is True

    def test_flush_delay_and_to_config(self):
        plan = ServeFaultPlan(
            seed=0, slow_flush_probability=1.0, slow_flush_ms=40.0, slow_flush_limit=1
        )
        assert plan.flush_delay_s("b") == pytest.approx(0.04)
        assert plan.flush_delay_s("b") == 0.0  # limit reached
        config = plan.to_config()
        assert config["slow_flush_ms"] == 40.0
        assert ServeFaultPlan(**config).to_config() == config


# ---------------------------------------------------------------------------
# CircuitBreaker


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        clock = FakeClock()
        breaker = CircuitBreaker("m", failure_threshold=3, reset_after_s=5, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_probe_recover_and_reopen(self):
        clock = FakeClock()
        breaker = CircuitBreaker("m", failure_threshold=1, reset_after_s=5, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 6.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # one probe at a time
        breaker.record_failure()  # probe failed: reopen, fresh cooldown
        assert breaker.state == "open" and not breaker.allow()
        clock.now = 12.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_cancel_probe_releases_the_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker("m", failure_threshold=1, reset_after_s=1, clock=clock)
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow() and not breaker.allow()
        breaker.cancel_probe()
        assert breaker.allow()  # slot free again


# ---------------------------------------------------------------------------
# Bounded admission + deadlines (MicroBatcher)


class TestBoundedAdmission:
    def test_overload_shed_is_typed_and_deterministic(self):
        gate = threading.Event()

        def flush(items):
            gate.wait(5.0)
            return items

        with MicroBatcher(flush, max_batch=1, max_wait_ms=0, max_queue_depth=2) as b:
            first = b.submit("a")  # dequeued by the worker, stuck in flush
            time.sleep(0.05)
            accepted = [b.submit(x) for x in ("b", "c")]
            shed = [b.submit(x) for x in ("d", "e")]
            for f in shed:
                with pytest.raises(Overloaded):
                    f.result(1.0)
            gate.set()
            assert first.result(5.0) == "a"
            assert [f.result(5.0) for f in accepted] == ["b", "c"]
        stats = b.stats()
        assert stats.shed_overloaded == 2 and stats.shed == 2

    def test_deadline_shed_at_dequeue(self):
        plan = ServeFaultPlan(
            seed=0, slow_flush_probability=1.0, slow_flush_ms=120.0, slow_flush_limit=1
        )
        with MicroBatcher(
            lambda xs: xs,
            max_batch=1,
            max_wait_ms=0,
            deadline_ms=30.0,
            fault_plan=plan,
            name="b",
        ) as b:
            slow = b.submit(1)  # its own flush stalls 120ms, but it was dequeued
            time.sleep(0.02)
            late = b.submit(2)  # still queued when its 30ms budget expires
            assert slow.result(5.0) == 1
            with pytest.raises(DeadlineExceeded):
                late.result(5.0)
        assert b.stats().shed_deadline == 1

    def test_on_shed_maps_to_results_instead_of_exceptions(self):
        gate = threading.Event()

        def flush(items):
            gate.wait(5.0)
            return items

        with MicroBatcher(
            flush,
            max_batch=1,
            max_wait_ms=0,
            max_queue_depth=1,
            on_shed=lambda item, reason: (item, reason),
        ) as b:
            b.submit("a")
            time.sleep(0.05)
            b.submit("b")
            shed = b.submit("c")
            assert shed.result(1.0) == ("c", "overloaded")
            gate.set()


# ---------------------------------------------------------------------------
# Service-level resilience


class TestServiceResilience:
    def test_shed_and_deadline_become_miss_responses(self, tmp_path, trained,
                                                     small_suite, small_dataset):
        reg = ModelRegistry(tmp_path / "r")
        publish(reg, trained, small_dataset)
        plan = ServeFaultPlan(
            seed=0, slow_flush_probability=1.0, slow_flush_ms=200.0, slow_flush_limit=1
        )
        config = ResilienceConfig(max_queue_depth=3, fault_plan=plan)
        with PredictionService(
            reg, list(small_suite), dataset=small_dataset,
            max_batch=1, max_wait_ms=0, resilience=config,
        ) as service:
            first = service.submit(warm_request(small_dataset))  # slow flush
            time.sleep(0.05)
            # A short per-request deadline behind the stuck flush resolves
            # to a typed miss instead of blocking the caller.
            t0 = time.perf_counter()
            late = service.predict(
                warm_request(small_dataset, k=4), deadline_ms=40.0
            )
            assert time.perf_counter() - t0 < 1.0
            assert late.error == MISS_DEADLINE
            # The abandoned entry still occupies its queue slot until the
            # worker sheds it, so two more fills the bound of 3.
            queued = [
                service.submit(warm_request(small_dataset, k=k)) for k in (1, 2)
            ]
            response = service.submit(warm_request(small_dataset, k=3)).result(1.0)
            assert response.error == MISS_OVERLOADED and response.latency_ms is None
            assert first.result(5.0).ok
            assert all(f.result(5.0).ok for f in queued)

    def test_predict_many_shares_one_deadline(self, tmp_path, trained,
                                              small_suite, small_dataset):
        reg = ModelRegistry(tmp_path / "r")
        publish(reg, trained, small_dataset)
        plan = ServeFaultPlan(
            seed=0, slow_flush_probability=1.0, slow_flush_ms=120.0,
            slow_flush_limit=10,
        )
        with PredictionService(
            reg, list(small_suite), dataset=small_dataset,
            max_batch=1, max_wait_ms=0,
            resilience=ResilienceConfig(fault_plan=plan),
        ) as service:
            requests = [warm_request(small_dataset, k=k) for k in range(5)]
            t0 = time.perf_counter()
            with pytest.raises(FuturesTimeoutError):
                service.predict_many(requests, timeout=0.3)
            elapsed = time.perf_counter() - t0
            # The old per-future timeout would have allowed ~5 * 0.3s.
            assert elapsed < 1.0

    def test_breaker_trip_probe_recover_sequencing(self, tmp_path, trained,
                                                   small_suite, small_dataset):
        reg = ModelRegistry(tmp_path / "r")
        publish(reg, trained, small_dataset)
        plan = ServeFaultPlan(
            seed=0, predict_failure_probability=1.0, predict_failure_limit=3
        )
        clock = FakeClock()
        with telemetry.scoped_registry() as treg:
            with PredictionService(
                reg, list(small_suite), dataset=small_dataset,
                max_batch=1, max_wait_ms=0,
                resilience=ResilienceConfig(
                    breaker_threshold=2, breaker_reset_s=10.0, fault_plan=plan
                ),
            ) as service:
                service._breaker_clock = clock
                tiers = []
                # Two injected failures trip the breaker; while open, the
                # chain answers from the static tier without touching the
                # model (no draws consumed).
                for _ in range(3):
                    tiers.append(service.predict(warm_request(small_dataset)))
                assert service.health()["breakers"] == {"default-v1": "open"}
                # Cooldown elapses: the probe is admitted, consumes the
                # third (final) injection, and re-opens the breaker.
                clock.now = 11.0
                tiers.append(service.predict(warm_request(small_dataset)))
                assert service.health()["breakers"] == {"default-v1": "open"}
                # Next probe succeeds: the breaker closes and primary
                # serving resumes.
                clock.now = 22.0
                tiers.append(service.predict(warm_request(small_dataset)))
                tiers.append(service.predict(warm_request(small_dataset)))
                assert service.health()["breakers"] == {"default-v1": "closed"}
                assert service.health()["status"] == "ok"
            assert [r.served_by for r in tiers] == [
                "static", "static", "static", "static", "primary", "primary",
            ]
            assert all(r.ok for r in tiers)
            counters = treg.snapshot()["counters"]
            assert counters["serve.breaker.trip"] == 2
            assert counters["serve.breaker.probe"] == 2
            assert counters["serve.breaker.recover"] == 1
            assert counters["serve.fault.predict"] == 3

    def test_stale_tier_serves_when_primary_breaker_open(self, tmp_path, trained,
                                                         small_suite, small_dataset):
        reg = ModelRegistry(tmp_path / "r")
        publish(reg, trained, small_dataset, tag=1)
        with PredictionService(
            reg, list(small_suite), dataset=small_dataset,
            max_batch=1, max_wait_ms=0,
            resilience=ResilienceConfig(breaker_threshold=1, breaker_reset_s=1e6),
        ) as service:
            publish(reg, trained, small_dataset, tag=2)
            swapped = service.refresh()
            assert swapped == {DEFAULT_CLUSTER: 2}
            baseline = service.predict(warm_request(small_dataset))
            assert baseline.served_by == "primary" and baseline.model_version == 2
            service._breaker((DEFAULT_CLUSTER, 2)).record_failure()  # trips at 1
            degraded = service.predict(warm_request(small_dataset))
            assert degraded.ok and degraded.served_by == "stale"
            assert degraded.model_version == 1
            # Same (network, device, model) -> byte-identical latency,
            # whichever tier routed it (v1 == v2 here: same training).
            assert degraded.latency_ms == baseline.latency_ms
            assert service.health()["status"] == "degraded"

    def test_default_tier_serves_tripped_cluster(self, tmp_path, trained,
                                                 small_suite, small_dataset):
        reg = ModelRegistry(tmp_path / "r")
        publish(reg, trained, small_dataset)
        publish(reg, trained, small_dataset, cluster="west")
        with PredictionService(
            reg, list(small_suite), dataset=small_dataset,
            max_batch=1, max_wait_ms=0,
            resilience=ResilienceConfig(breaker_threshold=1, breaker_reset_s=1e6),
        ) as service:
            request = warm_request(small_dataset, cluster="west")
            assert service.predict(request).served_by == "primary"
            service._breaker(("west", 1)).record_failure()
            fallback = service.predict(request)
            assert fallback.ok and fallback.served_by == "default"
            assert fallback.served_cluster == DEFAULT_CLUSTER

    def test_static_tier_survives_total_checkpoint_loss(self, tmp_path, trained,
                                                        small_suite, small_dataset):
        reg = ModelRegistry(tmp_path / "r")
        checkpoint = publish(reg, trained, small_dataset)
        with PredictionService(
            reg, list(small_suite), dataset=small_dataset,
            max_batch=1, max_wait_ms=0, resilience=ResilienceConfig(),
        ) as warm:
            checkpoint.path.write_bytes(b"rotten")
            # A warm service never re-reads an unchanged version, so its
            # in-memory copy keeps serving primary despite disk rot.
            warm.refresh()
            survivor = warm.predict(warm_request(small_dataset))
            assert survivor.ok and survivor.served_by == "primary"
        # A fresh service must load from disk, fails, and is left with
        # only the manifest-resident static estimate — which answers.
        with PredictionService(
            reg, list(small_suite), dataset=small_dataset,
            max_batch=1, max_wait_ms=0, resilience=ResilienceConfig(),
        ) as cold:
            assert cold.model_versions() == {}
            static_served = cold.predict(warm_request(small_dataset))
            assert static_served.ok and static_served.served_by == "static"
            assert static_served.model_version is None
            assert static_served.latency_ms > 0
            # Networks outside the estimator's means still miss by name.
            degraded = cold.predict(
                PredictRequest(
                    network="unknown-net-1",
                    device=small_dataset.device_names[0],
                )
            )
            assert degraded.error == "unknown_network"

    def test_registry_io_error_keeps_current_table(self, tmp_path, trained,
                                                   small_suite, small_dataset):
        reg = ModelRegistry(tmp_path / "r")
        publish(reg, trained, small_dataset)
        with PredictionService(
            reg, list(small_suite), dataset=small_dataset,
            max_batch=1, max_wait_ms=0,
        ) as service:
            before = service.model_versions()
            reg.fault_plan = ServeFaultPlan(
                seed=0, registry_io_probability=1.0, registry_io_limit=1
            )
            with telemetry.scoped_registry() as treg:
                assert service.refresh() == {}
                counters = treg.snapshot()["counters"]
            assert counters["serve.resilience.registry_error"] == 1
            assert service.model_versions() == before
            assert service.predict(warm_request(small_dataset)).ok
            # The injected fault was transient (limit=1): next refresh works.
            assert service.refresh() == {}
            assert service.model_versions() == before

    def test_clean_path_is_byte_identical_with_resilience_enabled(
        self, tmp_path, trained, small_suite, small_dataset
    ):
        reg = ModelRegistry(tmp_path / "r")
        publish(reg, trained, small_dataset)
        profile = LoadProfile(n_requests=120, concurrency=2, seed=5)
        requests = build_requests(
            small_dataset, trained.repo.signature_names, profile
        )
        digests = []
        for resilience in (
            None,
            ResilienceConfig(
                max_queue_depth=10_000,
                deadline_ms=60_000.0,
                breaker_threshold=2,
                breaker_reset_s=1.0,
            ),
        ):
            with PredictionService(
                reg, list(small_suite), dataset=small_dataset,
                resilience=resilience,
            ) as service:
                report = run_load(service, requests, profile)
            digests.append(report.digest())
            assert report.n_shed_overloaded == 0
            assert report.n_deadline_misses == 0
            assert report.n_degraded == 0
            assert set(report.served_by) <= {"primary"}
        assert digests[0] == digests[1]

    def test_health_reports_unready_after_close(self, tmp_path, trained,
                                                small_suite, small_dataset):
        reg = ModelRegistry(tmp_path / "r")
        publish(reg, trained, small_dataset)
        service = PredictionService(
            reg, list(small_suite), dataset=small_dataset
        )
        assert service.health()["status"] == "ok"
        service.close()
        health = service.health()
        assert health["status"] == "unready" and not health["accepting"]


# ---------------------------------------------------------------------------
# Registry eviction under concurrency (satellite)


class TestConcurrentCorruptEviction:
    def test_concurrent_refresh_readers_converge_after_corruption(
        self, tmp_path, trained, small_suite, small_dataset
    ):
        reg = ModelRegistry(tmp_path / "r")
        publish(reg, trained, small_dataset, tag=1)
        with PredictionService(
            reg, list(small_suite), dataset=small_dataset,
            max_batch=8, max_wait_ms=0,
        ) as service:
            assert service.model_versions() == {DEFAULT_CLUSTER: 1}
            # A corrupt v2 lands while the service is live: racing
            # refreshers all try to adopt it, fail to load, and evict it;
            # racing requesters must keep getting answers from v1.
            v2 = publish(reg, trained, small_dataset, tag=2)
            v2.path.write_bytes(b"bit rot")
            errors: list[BaseException] = []
            barrier = threading.Barrier(6)

            def refresher():
                try:
                    barrier.wait(5.0)
                    for _ in range(3):
                        service.refresh()
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            def requester():
                try:
                    barrier.wait(5.0)
                    for k in range(10):
                        response = service.predict(
                            warm_request(small_dataset, k=k), timeout=10.0
                        )
                        assert response.ok
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            threads = [threading.Thread(target=refresher) for _ in range(3)] + [
                threading.Thread(target=requester) for _ in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            # Every reader converged on the surviving version, and the
            # corrupt one is gone from the manifest (eviction is
            # idempotent under racing refreshers).
            assert service.model_versions() == {DEFAULT_CLUSTER: 1}
            assert [c.version for c in reg.versions(DEFAULT_CLUSTER)] == [1]
            assert not v2.path.exists()
            assert service.predict(warm_request(small_dataset)).ok


# ---------------------------------------------------------------------------
# Static estimator + publish integration


class TestStaticEstimator:
    def test_speed_scaling_and_unknown_network(self):
        est = StaticEstimator(
            network_mean_ms={"n1": 10.0, "n2": 40.0},
            signature_mean_ms={"n1": 10.0},
        )
        assert est.predict_ms("n1") == pytest.approx(10.0)
        # A device twice as slow as the cluster mean doubles the estimate.
        assert est.predict_ms("n2", {"n1": 20.0}) == pytest.approx(80.0)
        assert est.predict_ms("missing") is None

    def test_from_metadata_roundtrip(self, small_dataset, trained):
        block = fit_static_estimate(
            small_dataset, trained.repo.signature_names, sorted(trained.repo.contributions)
        )
        est = StaticEstimator.from_metadata({"static_estimate": block})
        assert est is not None
        name = small_dataset.network_names[0]
        assert est.predict_ms(name) == pytest.approx(block["network_mean_ms"][name])
        assert StaticEstimator.from_metadata({}) is None

    def test_publish_checkpoint_embeds_static_estimate(self, tmp_path, trained):
        reg = ModelRegistry(tmp_path / "r")
        checkpoint = trained.repo.publish_checkpoint(reg, regressor_seed=0)
        block = checkpoint.metadata["static_estimate"]
        assert set(block) == {"network_mean_ms", "signature_mean_ms"}
        assert len(block["network_mean_ms"]) > 0
        # The estimate survives checkpoint-file corruption: it lives in
        # the manifest, and the fresh-from-disk registry still has it.
        checkpoint.path.write_bytes(b"rotten")
        again = ModelRegistry(tmp_path / "r").latest(DEFAULT_CLUSTER)
        assert again.metadata["static_estimate"] == block


# ---------------------------------------------------------------------------
# Telemetry roll-up


class TestResilienceTelemetry:
    def test_summary_resilience_block(self, tmp_path, trained,
                                      small_suite, small_dataset):
        reg = ModelRegistry(tmp_path / "r")
        publish(reg, trained, small_dataset)
        plan = ServeFaultPlan(
            seed=0, predict_failure_probability=1.0, predict_failure_limit=2
        )
        with telemetry.scoped_registry() as treg:
            with PredictionService(
                reg, list(small_suite), dataset=small_dataset,
                max_batch=1, max_wait_ms=0,
                resilience=ResilienceConfig(breaker_threshold=5, fault_plan=plan),
            ) as service:
                for k in range(4):
                    assert service.predict(warm_request(small_dataset, k=k)).ok
            block = telemetry.summarize(treg)["serve"]["resilience"]
        assert block["faults_injected"]["predict"] == 2
        assert block["predict_errors"] == 2
        assert block["served_by"]["static"] == 2
        assert block["served_by"]["primary"] == 2
        assert block["fallbacks"]["static"] == 2
        assert block["shed"] == {"overloaded": 0, "deadline": 0, "abandoned": 0}
