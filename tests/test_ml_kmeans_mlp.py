"""Tests for KMeans clustering and the MLP regressor."""

import numpy as np
import pytest

from repro.ml.kmeans import KMeans
from repro.ml.metrics import r2_score
from repro.ml.mlp import MLPRegressor


def _blobs(seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    X = np.vstack([rng.normal(c, 0.5, size=(40, 2)) for c in centers])
    labels = np.repeat(np.arange(3), 40)
    return X, labels


class TestKMeans:
    def test_recovers_separated_blobs(self):
        X, truth = _blobs()
        labels = KMeans(3, seed=0).fit_predict(X)
        # Cluster ids are arbitrary; check that each true blob maps to a
        # single predicted cluster.
        for k in range(3):
            assert len(set(labels[truth == k])) == 1
        assert len(set(labels.tolist())) == 3

    def test_inertia_nonincreasing_in_k(self):
        X, _ = _blobs()
        inertias = [KMeans(k, seed=0).fit(X).inertia_ for k in (1, 2, 3, 5)]
        assert all(b <= a + 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_predict_matches_labels_on_train(self):
        X, _ = _blobs()
        km = KMeans(3, seed=1).fit(X)
        assert np.array_equal(km.predict(X), km.labels_)

    def test_centers_are_cluster_means(self):
        X, _ = _blobs()
        km = KMeans(3, seed=2).fit(X)
        for k in range(3):
            members = X[km.labels_ == k]
            assert np.allclose(km.cluster_centers_[k], members.mean(axis=0), atol=1e-6)

    def test_k_one_center_is_global_mean(self):
        X, _ = _blobs()
        km = KMeans(1, seed=0).fit(X)
        assert np.allclose(km.cluster_centers_[0], X.mean(axis=0))

    def test_determinism(self):
        X, _ = _blobs()
        a = KMeans(3, seed=5).fit_predict(X)
        b = KMeans(3, seed=5).fit_predict(X)
        assert np.array_equal(a, b)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            KMeans(5).fit(np.ones((3, 2)))

    def test_duplicate_points_handled(self):
        X = np.zeros((10, 2))
        km = KMeans(2, seed=0).fit(X)
        assert km.inertia_ == pytest.approx(0.0)


class TestMLP:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = MLPRegressor(hidden_sizes=(32,), epochs=150, seed=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(600, 2))
        y = np.sin(X[:, 0]) * X[:, 1]
        model = MLPRegressor(hidden_sizes=(64, 64), epochs=300, seed=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_loss_decreases(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 4))
        y = X[:, 0] ** 2
        model = MLPRegressor(epochs=50, seed=0).fit(X, y)
        assert model.train_loss_[-1] < model.train_loss_[0]

    def test_seed_determinism(self):
        rng = np.random.default_rng(3)
        X, y = rng.normal(size=(100, 2)), rng.normal(size=100)
        a = MLPRegressor(epochs=10, seed=4).fit(X, y).predict(X)
        b = MLPRegressor(epochs=10, seed=4).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_output_scale_restored(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(200, 2))
        y = 1e4 + 100.0 * X[:, 0]
        model = MLPRegressor(epochs=100, seed=0).fit(X, y)
        assert abs(model.predict(X).mean() - 1e4) < 100.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MLPRegressor(hidden_sizes=())
        with pytest.raises(ValueError):
            MLPRegressor(epochs=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MLPRegressor().predict(np.ones((1, 2)))
