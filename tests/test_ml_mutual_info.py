"""Tests for repro.ml.mutual_info."""

import numpy as np
import pytest

from repro.ml.mutual_info import (
    discretize,
    entropy,
    joint_entropy,
    mutual_information,
    mutual_information_matrix,
)


class TestDiscretize:
    def test_equal_frequency_bins(self):
        values = np.arange(100.0)
        codes = discretize(values, n_bins=4)
        _, counts = np.unique(codes, return_counts=True)
        assert counts.tolist() == [25, 25, 25, 25]

    def test_monotone(self):
        values = np.random.default_rng(0).normal(size=200)
        order = np.argsort(values)
        codes = discretize(values, 8)
        assert np.all(np.diff(codes[order].astype(int)) >= 0)

    def test_constant_input_single_bin(self):
        codes = discretize(np.ones(50), 8)
        assert len(np.unique(codes)) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            discretize(np.array([]), 4)
        with pytest.raises(ValueError):
            discretize(np.ones(5), 1)


class TestEntropy:
    def test_uniform_distribution(self):
        labels = np.repeat(np.arange(4), 25)
        assert entropy(labels) == pytest.approx(np.log(4))

    def test_deterministic_distribution(self):
        assert entropy(np.zeros(10)) == 0.0

    def test_joint_entropy_of_independent_copies(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, size=10_000)
        b = rng.integers(0, 2, size=10_000)
        assert joint_entropy(a, b) == pytest.approx(2 * np.log(2), abs=0.01)

    def test_joint_entropy_of_identical_variables(self):
        a = np.repeat(np.arange(3), 30)
        assert joint_entropy(a, a) == pytest.approx(entropy(a))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            joint_entropy(np.ones(3), np.ones(4))


class TestMutualInformation:
    def test_self_information_equals_entropy(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=500)
        mi = mutual_information(x, x, n_bins=8)
        assert mi == pytest.approx(entropy(discretize(x, 8)), abs=1e-9)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=5000), rng.normal(size=5000)
        assert mutual_information(x, y) < 0.05

    def test_dependence_ordering(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=2000)
        noisy = x + rng.normal(size=2000)
        noisier = x + 5 * rng.normal(size=2000)
        assert mutual_information(x, noisy) > mutual_information(x, noisier)

    def test_nonnegative(self):
        rng = np.random.default_rng(4)
        for _ in range(5):
            a, b = rng.normal(size=50), rng.normal(size=50)
            assert mutual_information(a, b) >= 0.0

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(5)
        x, y = rng.normal(size=1000), rng.normal(size=1000)
        direct = mutual_information(x, y)
        transformed = mutual_information(np.exp(x), y)
        assert direct == pytest.approx(transformed, abs=1e-9)


class TestMutualInformationMatrix:
    def test_shape_and_symmetry(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(5, 200))
        mi = mutual_information_matrix(data)
        assert mi.shape == (5, 5)
        assert np.allclose(mi, mi.T)

    def test_diagonal_is_entropy(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(3, 300))
        mi = mutual_information_matrix(data, n_bins=8)
        for i in range(3):
            assert mi[i, i] == pytest.approx(entropy(discretize(data[i], 8)))

    def test_correlated_rows_have_high_mi(self):
        rng = np.random.default_rng(8)
        base = rng.normal(size=500)
        data = np.stack([base, base + 0.01 * rng.normal(size=500), rng.normal(size=500)])
        mi = mutual_information_matrix(data)
        assert mi[0, 1] > mi[0, 2]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            mutual_information_matrix(np.ones(5))
