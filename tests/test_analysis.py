"""Tests for the exploratory-analysis helpers."""

import numpy as np
import pytest

from repro.analysis.clustering import (
    cluster_devices,
    cluster_networks,
    cpu_cluster_overlap,
)
from repro.analysis.eda import (
    frequency_latency_relation,
    latency_spread_at_fixed_spec,
    network_flops_histogram,
)
from repro.analysis.reporting import ascii_histogram, format_table


class TestClustering:
    def test_device_clusters_speed_ordered(self, small_dataset):
        summaries, labels = cluster_devices(small_dataset)
        assert [s.name for s in summaries] == ["fast", "medium", "slow"]
        means = [s.mean_latency_ms for s in summaries]
        assert means[0] < means[1] < means[2]
        assert sum(s.size for s in summaries) == small_dataset.n_devices
        assert labels.shape == (small_dataset.n_devices,)

    def test_network_clusters_size_ordered(self, small_dataset):
        summaries, labels = cluster_networks(small_dataset)
        assert [s.name for s in summaries] == ["small", "large", "giant"]
        means = [s.mean_latency_ms for s in summaries]
        assert means[0] < means[1] < means[2]
        assert sum(s.size for s in summaries) == small_dataset.n_networks

    def test_members_match_labels(self, small_dataset):
        summaries, labels = cluster_devices(small_dataset)
        for rank, summary in enumerate(summaries):
            for member in summary.members:
                idx = small_dataset.device_index(member)
                assert labels[idx] == rank

    def test_cpu_overlap_structure(self, small_dataset, small_fleet):
        _, labels = cluster_devices(small_dataset)
        overlap = cpu_cluster_overlap(small_fleet, small_dataset, labels)
        assert set().union(*overlap.values()) <= {0, 1, 2}
        # Every device's CPU appears in the mapping.
        for name in small_dataset.device_names:
            assert small_fleet[name].cpu_model in overlap


class TestEDA:
    def test_flops_histogram(self, small_suite):
        counts, edges = network_flops_histogram(small_suite, bins=6)
        assert counts.sum() == len(small_suite)
        assert len(edges) == 7

    def test_frequency_relation_points(self, small_dataset, small_fleet):
        points = frequency_latency_relation(
            small_dataset, small_fleet, "mobilenet_v2_1.0"
        )
        assert len(points) == small_dataset.n_devices
        p = points[0]
        assert p.latency_ms == small_dataset.latency(p.device, "mobilenet_v2_1.0")
        assert p.frequency_ghz == small_fleet[p.device].frequency_ghz

    def test_decreasing_trend_with_frequency(self, small_dataset, small_fleet):
        points = frequency_latency_relation(
            small_dataset, small_fleet, "mobilenet_v2_1.0"
        )
        freqs = np.array([p.frequency_ghz for p in points])
        lats = np.array([p.latency_ms for p in points])
        # Negative correlation overall (the paper's "decreasing trend").
        assert np.corrcoef(freqs, lats)[0, 1] < -0.2

    def test_fixed_spec_spread(self, small_dataset, small_fleet):
        spread = latency_spread_at_fixed_spec(
            small_dataset, small_fleet, "mobilenet_v2_1.0"
        )
        for (freq, dram), (lo, hi, n) in spread.items():
            assert n >= 2 and lo <= hi


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "r2"], [["mis", 0.944], ["rs", 0.9125]])
        lines = text.splitlines()
        assert "name" in lines[0] and "r2" in lines[0]
        assert set(lines[1]) == {"-"}
        assert "0.944" in lines[2]

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_ascii_histogram_renders_all_bins(self):
        counts, edges = np.histogram([1, 2, 2, 3, 3, 3], bins=3)
        text = ascii_histogram(counts, edges)
        assert len(text.splitlines()) == 3
        assert text.splitlines()[-1].endswith("3")

    def test_ascii_histogram_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.array([]), np.array([0.0]))
