"""Tests for the baseline regressors: random forest, kNN, ridge."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import r2_score


def _linear_data(n=300, seed=0, noise=0.1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    w = np.array([1.0, -2.0, 0.5, 0.0, 3.0])
    y = X @ w + 4.0 + noise * rng.normal(size=n)
    return X, y


class TestRandomForest:
    def test_fits_nonlinear_signal(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (500, 4))
        y = np.sign(X[:, 0]) * 3 + X[:, 1] ** 2
        model = RandomForestRegressor(n_estimators=30, max_depth=8, seed=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.85

    def test_prediction_is_tree_average(self):
        X, y = _linear_data(100)
        model = RandomForestRegressor(n_estimators=7, max_depth=3, seed=1).fit(X, y)
        manual = np.mean([t.predict(X) for t in model._trees], axis=0)
        assert np.allclose(model.predict(X), manual)

    def test_seed_determinism(self):
        X, y = _linear_data(150)
        a = RandomForestRegressor(n_estimators=5, seed=3).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=3).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_max_features_options(self):
        X, y = _linear_data(80)
        for mf in ("sqrt", None, 2):
            model = RandomForestRegressor(n_estimators=3, max_features=mf, seed=0)
            model.fit(X, y)
            assert model.predict(X).shape == (80,)

    def test_invalid_max_features(self):
        X, y = _linear_data(50)
        with pytest.raises(ValueError, match="max_features"):
            RandomForestRegressor(max_features="bogus").fit(X, y)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((1, 2)))


class TestKNN:
    def test_exact_neighbor_recovery(self):
        X = np.arange(10.0).reshape(-1, 1)
        y = X[:, 0] * 2
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        assert np.allclose(model.predict(X), y)

    def test_k_larger_than_train_is_global_mean(self):
        X = np.arange(4.0).reshape(-1, 1)
        y = np.array([0.0, 1.0, 2.0, 3.0])
        model = KNeighborsRegressor(n_neighbors=10).fit(X, y)
        assert np.allclose(model.predict(np.array([[100.0]])), 1.5)

    def test_uniform_averages_k_nearest(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        assert model.predict(np.array([[0.4]]))[0] == pytest.approx(1.0)

    def test_distance_weighting_prefers_closer(self):
        X = np.array([[0.0], [2.0]])
        y = np.array([0.0, 10.0])
        uni = KNeighborsRegressor(2, weights="uniform").fit(X, y)
        dist = KNeighborsRegressor(2, weights="distance").fit(X, y)
        q = np.array([[0.5]])
        assert dist.predict(q)[0] < uni.predict(q)[0]

    def test_distance_weighting_exact_match_dominates(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([5.0, 50.0])
        model = KNeighborsRegressor(2, weights="distance").fit(X, y)
        assert model.predict(np.array([[0.0]]))[0] == pytest.approx(5.0)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="cosine")

    def test_wrong_width_raises(self):
        model = KNeighborsRegressor(1).fit(np.ones((3, 2)), np.ones(3))
        with pytest.raises(ValueError):
            model.predict(np.ones((1, 3)))


class TestRidge:
    def test_recovers_linear_model(self):
        X, y = _linear_data(noise=0.0)
        model = RidgeRegression(alpha=1e-8).fit(X, y)
        assert np.allclose(model.coef_, [1.0, -2.0, 0.5, 0.0, 3.0], atol=1e-5)
        assert model.intercept_ == pytest.approx(4.0, abs=1e-5)

    def test_high_alpha_shrinks_coefficients(self):
        X, y = _linear_data()
        loose = RidgeRegression(alpha=1e-6).fit(X, y)
        tight = RidgeRegression(alpha=1e6).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_) * 0.01

    def test_intercept_not_penalized(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.full(100, 1000.0)
        model = RidgeRegression(alpha=1e6).fit(X, y)
        assert model.predict(X).mean() == pytest.approx(1000.0, rel=1e-6)

    def test_collinear_features_handled(self):
        rng = np.random.default_rng(1)
        base = rng.normal(size=(50, 1))
        X = np.hstack([base, base, base])  # rank 1
        y = base[:, 0] * 3
        model = RidgeRegression(alpha=0.0).fit(X, y)
        assert np.isfinite(model.coef_).all()
        assert r2_score(y, model.predict(X)) > 0.99

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)
