"""Shared fixtures: a scaled-down dataset triple for fast tests.

The paper-scale artifacts (118 networks x 105 devices) take seconds to
build and much longer to model; unit/integration tests run on a small
but structurally identical triple.
"""

from __future__ import annotations

import pytest

from repro.dataset.collection import collect_dataset
from repro.devices.catalog import build_fleet
from repro.devices.measurement import MeasurementHarness
from repro.generator.suite import BenchmarkSuite


@pytest.fixture(scope="session")
def small_suite() -> BenchmarkSuite:
    """18 zoo networks + 12 random ones (30 total)."""
    return BenchmarkSuite.default(n_random=12, seed=0)


@pytest.fixture(scope="session")
def small_fleet():
    """A 24-device fleet."""
    return build_fleet(24, seed=0)


@pytest.fixture(scope="session")
def small_dataset(small_suite, small_fleet):
    """Latencies of the small suite on the small fleet."""
    return collect_dataset(small_suite, small_fleet, MeasurementHarness(seed=0))
