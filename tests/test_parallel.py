"""Tests for the parallel execution layer and its determinism contract."""

import numpy as np
import pytest

from repro.core.collaborative import simulate_collaboration
from repro.core.evaluation import EvaluationSpec, evaluate_many, signature_size_sweep
from repro.dataset.collection import collect_dataset
from repro.devices.measurement import MeasurementHarness
from repro.parallel import (
    BACKENDS,
    Executor,
    TaskError,
    derive_seed,
    get_executor,
    parallel_map,
    resolve_backend,
    resolve_jobs,
)


def _add_offset(shared, task):
    """Module-level task fn so the process backend can pickle it."""
    return shared + task


def _explode_on_odd(shared, task):
    """Module-level task fn (picklable) that fails on odd tasks."""
    if task % 2 == 1:
        raise RuntimeError(f"task {task} exploded")
    return shared + task


class TestResolvers:
    def test_jobs_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_jobs_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_jobs_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_jobs_all_cpus(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) == resolve_jobs(0)

    def test_jobs_invalid(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_jobs(-3)
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_backend_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None, jobs=1) == "serial"
        assert resolve_backend(None, jobs=4) == "process"

    def test_backend_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        assert resolve_backend(None, jobs=4) == "thread"

    def test_backend_invalid(self):
        with pytest.raises(ValueError):
            resolve_backend("mpi")


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "dev_a", 3) == derive_seed(0, "dev_a", 3)

    def test_components_matter(self):
        seeds = {
            derive_seed(0, "dev_a"),
            derive_seed(0, "dev_b"),
            derive_seed(1, "dev_a"),
            derive_seed(0, "dev_a", 1),
        }
        assert len(seeds) == 4

    def test_fits_in_numpy_seed_range(self):
        for i in range(50):
            assert 0 <= derive_seed(i, "x") < 2**63


class TestExecutorMap:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_order_preserved(self, backend):
        executor = Executor(backend, jobs=3)
        assert executor.map(_add_offset, list(range(20)), shared=100) == [
            100 + i for i in range(20)
        ]

    def test_empty_tasks(self):
        assert Executor("process", jobs=2).map(_add_offset, [], shared=0) == []

    def test_parallel_map_convenience(self):
        assert parallel_map(_add_offset, [1, 2], shared=10, backend="thread", jobs=2) == [11, 12]

    def test_get_executor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        executor = get_executor()
        assert executor.backend == "thread" and executor.jobs == 2


class TestErrorIsolation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_catch_errors_returns_sentinels_in_order(self, backend):
        executor = Executor(backend, jobs=3)
        results = executor.map(
            _explode_on_odd, list(range(6)), shared=100, catch_errors=True
        )
        assert [r for r in results if not isinstance(r, TaskError)] == [100, 102, 104]
        for i in (1, 3, 5):
            assert isinstance(results[i], TaskError)
            assert f"task {i} exploded" in results[i].error

    def test_task_error_is_falsy(self):
        assert not TaskError(error="boom", task_repr="t")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_errors_propagate_without_flag(self, backend):
        executor = Executor(backend, jobs=2)
        with pytest.raises(RuntimeError, match="exploded"):
            executor.map(_explode_on_odd, [1], shared=0)


class TestCampaignDeterminism:
    """Serial / thread / process backends must agree byte-for-byte."""

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_collect_dataset_backend_identical(
        self, backend, small_suite, small_fleet, small_dataset
    ):
        again = collect_dataset(
            small_suite,
            small_fleet,
            MeasurementHarness(seed=0),
            jobs=4,
            backend=backend,
        )
        assert again.device_names == small_dataset.device_names
        assert again.network_names == small_dataset.network_names
        assert again.latencies_ms.tobytes() == small_dataset.latencies_ms.tobytes()

    def test_collect_dataset_matches_scalar_protocol(self, small_suite, small_fleet, small_dataset):
        harness = MeasurementHarness(seed=0)
        device = small_fleet[1]
        net_name = small_suite.names[4]
        assert small_dataset.latency(device.name, net_name) == pytest.approx(
            harness.measure_ms(device, small_suite[net_name])
        )


class TestParallelEvaluation:
    def test_evaluate_many_matches_serial(self, small_suite, small_dataset):
        specs = [
            EvaluationSpec(method=m, signature_size=4, split_seed=1)
            for m in ("rs", "mis", "sccs")
        ]
        serial = evaluate_many(small_dataset, small_suite, specs, backend="serial")
        threaded = evaluate_many(
            small_dataset, small_suite, specs, jobs=3, backend="thread"
        )
        for a, b in zip(serial, threaded):
            assert a.method == b.method
            assert a.signature_names == b.signature_names
            assert a.r2 == b.r2 and a.rmse_ms == b.rmse_ms
            assert np.array_equal(a.y_pred, b.y_pred)

    def test_signature_size_sweep_grid(self, small_suite, small_dataset):
        table = signature_size_sweep(
            small_dataset,
            small_suite,
            sizes=(3, 5),
            methods=("rs", "mis"),
            rs_repeats=2,
            split_seed=1,
            jobs=2,
            backend="thread",
        )
        assert set(table) == {3, 5}
        assert set(table[3]) == {"rs", "mis"}
        for row in table.values():
            for score in row.values():
                assert np.isfinite(score)


class TestParallelCollaboration:
    def test_simulation_backend_identical(self, small_suite, small_dataset):
        kwargs = dict(
            contribution_fraction=0.3,
            n_iterations=6,
            evaluate_every=3,
            signature_size=4,
            seed=0,
        )
        serial = simulate_collaboration(small_dataset, small_suite, **kwargs)
        threaded = simulate_collaboration(
            small_dataset, small_suite, jobs=2, backend="thread", **kwargs
        )
        assert [(r.n_devices, r.n_training_points) for r in serial] == [
            (r.n_devices, r.n_training_points) for r in threaded
        ]
        assert [r.avg_r2 for r in serial] == [r.avg_r2 for r in threaded]
