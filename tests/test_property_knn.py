"""Property test: kNN's matmul distance path matches naive distances."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ml.knn import KNeighborsRegressor


class TestKnnDistanceEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 5))
    def test_matches_naive_neighbors(self, seed, k):
        rng = np.random.default_rng(seed)
        X_train = rng.normal(size=(30, 4))
        y_train = rng.normal(size=30)
        X_test = rng.normal(size=(10, 4))

        model = KNeighborsRegressor(n_neighbors=k).fit(X_train, y_train)
        fast = model.predict(X_test)

        naive = np.empty(10)
        for i, q in enumerate(X_test):
            d2 = ((X_train - q) ** 2).sum(axis=1)
            nearest = np.argsort(d2, kind="stable")[:k]
            naive[i] = y_train[nearest].mean()
        assert np.allclose(fast, naive, atol=1e-8)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_distance_weighted_bounded_by_neighbor_values(self, seed):
        rng = np.random.default_rng(seed)
        X_train = rng.normal(size=(25, 3))
        y_train = rng.normal(size=25)
        X_test = rng.normal(size=(8, 3))
        model = KNeighborsRegressor(5, weights="distance").fit(X_train, y_train)
        pred = model.predict(X_test)
        assert pred.min() >= y_train.min() - 1e-9
        assert pred.max() <= y_train.max() + 1e-9
