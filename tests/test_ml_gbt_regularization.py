"""Deeper tests of the GBT's XGBoost-style regularization controls."""

import numpy as np

from repro.ml.gbt import GradientBoostedTrees, _FlatTree


def _data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 6))
    y = np.where(X[:, 0] > 0, 4.0, -4.0) + 0.5 * X[:, 1] + 0.1 * rng.normal(size=n)
    return X, y


class TestGamma:
    def test_high_gamma_prunes_all_splits(self):
        X, y = _data()
        model = GradientBoostedTrees(n_estimators=5, gamma=1e12).fit(X, y)
        # Every tree degenerates to a single leaf -> constant prediction.
        assert np.allclose(model.predict(X), model.predict(X)[0])

    def test_moderate_gamma_keeps_strong_splits(self):
        X, y = _data()
        free = GradientBoostedTrees(n_estimators=10, gamma=0.0).fit(X, y)
        pruned = GradientBoostedTrees(n_estimators=10, gamma=5.0).fit(X, y)
        # The dominant step on feature 0 survives moderate gamma.
        assert pruned.feature_importances_[0] > 0.5
        # Weak splits are pruned away relative to the free model.
        assert (pruned.feature_importances_ > 0).sum() <= (
            free.feature_importances_ > 0
        ).sum()


class TestMinChildWeight:
    def test_large_min_child_weight_blocks_unbalanced_splits(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, size=(100, 1))
        # A spike on 3 samples: splitting it off needs a tiny child.
        y = np.where(X[:, 0] > 0.97, 100.0, 0.0)
        loose = GradientBoostedTrees(n_estimators=1, learning_rate=1.0,
                                     min_child_weight=1.0).fit(X, y)
        strict = GradientBoostedTrees(n_estimators=1, learning_rate=1.0,
                                      min_child_weight=10.0).fit(X, y)
        spike = X[:, 0] > 0.97
        # The loose model isolates the spike; the strict one cannot.
        assert loose.predict(X)[spike].mean() > strict.predict(X)[spike].mean()


class TestRowSubsampling:
    def test_subsample_still_learns(self):
        X, y = _data(1000)
        model = GradientBoostedTrees(n_estimators=60, subsample=0.5, seed=0).fit(X, y)
        from repro.ml.metrics import r2_score

        assert r2_score(y, model.predict(X)) > 0.9


class TestFlatTreePredict:
    def test_single_leaf_tree(self):
        tree = _FlatTree(
            feature=np.array([-1], dtype=np.int32),
            bin_threshold=np.array([0], dtype=np.uint8),
            left=np.array([-1], dtype=np.int32),
            right=np.array([-1], dtype=np.int32),
            value=np.array([2.5]),
        )
        codes = np.zeros((4, 3), dtype=np.uint8)
        assert np.allclose(tree.predict(codes), 2.5)

    def test_two_level_routing(self):
        tree = _FlatTree(
            feature=np.array([0, -1, -1], dtype=np.int32),
            bin_threshold=np.array([5, 0, 0], dtype=np.uint8),
            left=np.array([1, -1, -1], dtype=np.int32),
            right=np.array([2, -1, -1], dtype=np.int32),
            value=np.array([0.0, -1.0, 1.0]),
        )
        codes = np.array([[3], [9]], dtype=np.uint8)
        assert tree.predict(codes).tolist() == [-1.0, 1.0]


class TestTrainingEdgeCases:
    def test_single_row_pair(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([1.0, 3.0])
        model = GradientBoostedTrees(n_estimators=50, learning_rate=0.5).fit(X, y)
        pred = model.predict(X)
        assert pred[0] < pred[1]

    def test_duplicate_rows_average(self):
        X = np.zeros((10, 2))
        y = np.arange(10.0)
        model = GradientBoostedTrees(n_estimators=5).fit(X, y)
        assert np.allclose(model.predict(X), 4.5)

    def test_many_more_features_than_rows(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(20, 500))
        y = X[:, 7] * 2
        model = GradientBoostedTrees(n_estimators=30).fit(X, y)
        from repro.ml.metrics import r2_score

        assert r2_score(y, model.predict(X)) > 0.8
