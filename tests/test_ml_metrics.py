"""Tests for repro.ml.metrics."""

import numpy as np
import pytest
from scipy import stats

from repro.ml.metrics import mae, mape, pearsonr, r2_score, rmse, spearmanr


class TestR2Score:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_predictor_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        pred = np.full(4, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.array([3.0, 1.0, -2.0])
        assert r2_score(y, pred) < 0.0

    def test_constant_target_exact_match(self):
        y = np.array([5.0, 5.0, 5.0])
        assert r2_score(y, y) == 1.0

    def test_constant_target_mismatch(self):
        y = np.array([5.0, 5.0, 5.0])
        assert r2_score(y, y + 1) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            r2_score(np.ones(3), np.ones(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            r2_score(np.array([]), np.array([]))

    def test_known_value(self):
        y = np.array([3.0, -0.5, 2.0, 7.0])
        pred = np.array([2.5, 0.0, 2.0, 8.0])
        # Reference value from the standard definition.
        assert r2_score(y, pred) == pytest.approx(0.9486, abs=1e-4)


class TestErrorMetrics:
    def test_rmse_known(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_rmse_zero_for_exact(self):
        y = np.linspace(0, 10, 7)
        assert rmse(y, y) == 0.0

    def test_mae_known(self):
        assert mae(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == pytest.approx(1.5)

    def test_mape_known(self):
        assert mape(np.array([10.0, 20.0]), np.array([11.0, 18.0])) == pytest.approx(
            0.1
        )

    def test_mape_rejects_zero_targets(self):
        with pytest.raises(ValueError, match="zero targets"):
            mape(np.array([0.0, 1.0]), np.array([1.0, 1.0]))


class TestCorrelations:
    def test_pearson_perfect_positive(self):
        x = np.arange(10.0)
        assert pearsonr(x, 2 * x + 1) == pytest.approx(1.0)

    def test_pearson_perfect_negative(self):
        x = np.arange(10.0)
        assert pearsonr(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_input_is_zero(self):
        assert pearsonr(np.ones(5), np.arange(5.0)) == 0.0

    def test_pearson_matches_scipy(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=100), rng.normal(size=100)
        assert pearsonr(x, y) == pytest.approx(stats.pearsonr(x, y).statistic)

    def test_spearman_monotonic_transform_invariance(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        assert spearmanr(x, y) == pytest.approx(spearmanr(np.exp(x), y))

    def test_spearman_matches_scipy_with_ties(self):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 5, size=60).astype(float)  # many ties
        y = rng.integers(0, 5, size=60).astype(float)
        assert spearmanr(x, y) == pytest.approx(
            stats.spearmanr(x, y).statistic, abs=1e-12
        )

    def test_spearman_perfect_rank_agreement(self):
        x = np.array([1.0, 5.0, 3.0, 9.0])
        assert spearmanr(x, x**3) == pytest.approx(1.0)
