"""Tests for the serving layer (repro.serve): micro-batcher semantics,
registry versioning/eviction, the prediction service's byte-identity
determinism contract, hot-swap atomicity under concurrent readers, and
the serve telemetry roll-up."""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro import telemetry
from repro.core.collaborative import CollaborativeRepository
from repro.serve import (
    DEFAULT_CLUSTER,
    MicroBatcher,
    ModelRegistry,
    PredictRequest,
    PredictionService,
)
from repro.serve.loadgen import LoadProfile, build_requests, run_load
from repro.serve.registry import file_digest


@pytest.fixture(scope="module")
def trained(small_suite, small_dataset):
    """A 12-member collaborative repository and its trained model."""
    repo = CollaborativeRepository(
        small_dataset, small_suite, signature_size=5, seed=0
    )
    for device in small_dataset.device_names[:12]:
        repo.join(device, 0.5)
    model = repo.train(regressor_seed=0)
    return SimpleNamespace(repo=repo, model=model)


@pytest.fixture()
def registry(tmp_path, trained):
    """A fresh registry with the trained model published as v1."""
    reg = ModelRegistry(tmp_path / "registry")
    reg.publish(trained.model, {"members": 12})
    return reg


# ---------------------------------------------------------------------------
# MicroBatcher


class TestMicroBatcher:
    def test_results_map_to_items_in_order(self):
        with MicroBatcher(lambda xs: [x * 2 for x in xs], max_batch=4) as batcher:
            futures = [batcher.submit(i) for i in range(10)]
            assert [f.result(5.0) for f in futures] == [i * 2 for i in range(10)]

    def test_full_flush_cause(self):
        with telemetry.scoped_registry() as reg:
            with MicroBatcher(
                lambda xs: xs, max_batch=3, max_wait_ms=10_000.0
            ) as batcher:
                futures = [batcher.submit(i) for i in range(3)]
                [f.result(5.0) for f in futures]
                stats = batcher.stats()
            assert stats.flushes["full"] == 1
            assert stats.flushes["timeout"] == 0
            assert stats.max_batch_seen == 3
        counters = reg.snapshot()["counters"]
        assert counters["serve.batch_full"] == 1
        assert "serve.batch_timeout" not in counters

    def test_timeout_flush_cause(self):
        with telemetry.scoped_registry() as reg:
            with MicroBatcher(
                lambda xs: xs, max_batch=100, max_wait_ms=5.0
            ) as batcher:
                future = batcher.submit("lonely")
                assert future.result(5.0) == "lonely"
                stats = batcher.stats()
            assert stats.flushes["timeout"] == 1
            assert stats.flushes["full"] == 0
        counters = reg.snapshot()["counters"]
        assert counters["serve.batch_timeout"] == 1
        assert "serve.batch_full" not in counters

    def test_shutdown_drains_pending_items(self):
        batcher = MicroBatcher(lambda xs: xs, max_batch=100, max_wait_ms=10_000.0)
        futures = [batcher.submit(i) for i in range(7)]
        batcher.close()
        assert [f.result(1.0) for f in futures] == list(range(7))
        assert batcher.stats().flushes["shutdown"] >= 1

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda xs: xs)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(1)

    def test_flush_error_fails_only_that_batch(self):
        calls = []

        def flaky(xs):
            calls.append(list(xs))
            if len(calls) == 1:
                raise ValueError("boom")
            return xs

        with MicroBatcher(flaky, max_batch=2, max_wait_ms=5.0) as batcher:
            first = [batcher.submit(i) for i in range(2)]
            for f in first:
                with pytest.raises(ValueError):
                    f.result(5.0)
            second = [batcher.submit(i) for i in range(2)]
            assert [f.result(5.0) for f in second] == [0, 1]
        stats = batcher.stats()
        assert stats.failed == 2
        assert stats.completed == 2

    def test_wrong_result_count_is_an_error(self):
        with MicroBatcher(lambda xs: xs[:-1], max_batch=2, max_wait_ms=5.0) as b:
            futures = [b.submit(i) for i in range(2)]
            with pytest.raises(RuntimeError, match="1 results for 2 items"):
                futures[0].result(5.0)

    def test_queue_depth_gauge_is_recorded(self):
        release = threading.Event()

        def slow(xs):
            release.wait(5.0)
            return xs

        with telemetry.scoped_registry() as reg:
            batcher = MicroBatcher(slow, max_batch=1, max_wait_ms=0.0)
            futures = [batcher.submit(i) for i in range(5)]
            deadline = time.monotonic() + 5.0
            while batcher.queue_depth == 0 and time.monotonic() < deadline:
                time.sleep(0.001)
            assert batcher.queue_depth > 0
            assert reg.snapshot()["gauges"]["serve.queue_depth"] > 0
            release.set()
            batcher.close()
            [f.result(5.0) for f in futures]
        assert reg.snapshot()["gauges"]["serve.queue_depth"] == 0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda xs: xs, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda xs: xs, max_wait_ms=-1.0)


# ---------------------------------------------------------------------------
# ModelRegistry


class TestModelRegistry:
    def test_versions_are_monotonic_and_keys_content_addressed(
        self, registry, trained
    ):
        second = registry.publish(trained.model, {"members": 12})
        third = registry.publish(trained.model, {"members": 13})
        versions = [c.version for c in registry.versions(DEFAULT_CLUSTER)]
        assert versions == [1, 2, 3]
        assert registry.latest(DEFAULT_CLUSTER).version == 3
        # Same config -> same content key; different config -> new key.
        assert second.key == registry.versions(DEFAULT_CLUSTER)[0].key
        assert third.key != second.key

    def test_resolve_falls_back_to_default_cluster(self, registry):
        with telemetry.scoped_registry() as reg:
            checkpoint = registry.resolve("tablet-cluster")
            assert checkpoint is not None
            assert checkpoint.cluster == DEFAULT_CLUSTER
            assert reg.snapshot()["counters"]["serve.route.fallback"] == 1
        assert registry.resolve(DEFAULT_CLUSTER).cluster == DEFAULT_CLUSTER

    def test_empty_registry_resolves_none(self, tmp_path):
        assert ModelRegistry(tmp_path / "empty").resolve("anything") is None

    def test_load_roundtrip_preserves_predictions(self, registry, trained):
        checkpoint = registry.latest(DEFAULT_CLUSTER)
        loaded = registry.load(checkpoint)
        assert loaded is not None
        assert (
            list(loaded.hardware_encoder.signature_names)
            == trained.repo.signature_names
        )

    def test_corrupt_checkpoint_is_evicted_with_survivor(
        self, registry, trained
    ):
        v2 = registry.publish(trained.model, {"members": 12})
        v2.path.write_bytes(b"garbage")
        assert registry.load(v2) is None
        assert registry.latest(DEFAULT_CLUSTER).version == 1
        assert not v2.path.exists()
        assert registry.load(registry.latest(DEFAULT_CLUSTER)) is not None

    def test_digest_actually_covers_file_bytes(self, registry):
        checkpoint = registry.latest(DEFAULT_CLUSTER)
        assert file_digest(checkpoint.path) == checkpoint.digest

    def test_publish_rejects_static_models_and_bad_clusters(
        self, registry, trained, small_suite, small_dataset
    ):
        from repro.core.cost_model import CostModel
        from repro.core.representation import (
            StaticHardwareEncoder,
            shared_encoded_suite,
        )

        enc = shared_encoded_suite(list(small_suite))
        static = CostModel(enc.encoder, StaticHardwareEncoder(["cortex-a76"]))
        with pytest.raises(TypeError, match="signature"):
            registry.publish(static, {})
        with pytest.raises(ValueError, match="cluster"):
            registry.publish(trained.model, {}, cluster="bad/name")


# ---------------------------------------------------------------------------
# PredictionService


class TestPredictionService:
    def test_batch_boundaries_never_change_predictions(
        self, registry, trained, small_suite, small_dataset
    ):
        """The determinism contract: byte-identical predictions whether
        requests are served alone, in small batches, or in large ones."""
        profile = LoadProfile(
            n_requests=120,
            mode="closed",
            concurrency=3,
            cold_fraction=0.25,
            unknown_fraction=0.1,
            seed=11,
        )
        requests = build_requests(
            small_dataset, trained.repo.signature_names, profile
        )
        digests = []
        for max_batch, max_wait_ms in ((1, 0.0), (7, 1.0), (32, 2.0)):
            with PredictionService(
                registry,
                list(small_suite),
                dataset=small_dataset,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
            ) as service:
                report = run_load(service, requests, profile)
            digests.append(report.digest())
        assert digests[0] == digests[1] == digests[2]

    def test_batched_matches_direct_model_prediction(
        self, registry, trained, small_suite, small_dataset
    ):
        """Service output equals assembling the design row by hand."""
        from repro.core.representation import shared_encoded_suite

        device = small_dataset.device_names[0]
        network = [
            n
            for n in small_dataset.network_names
            if n not in trained.repo.signature_names
        ][0]
        with PredictionService(
            registry, list(small_suite), dataset=small_dataset
        ) as service:
            response = service.predict(
                PredictRequest(network=network, device=device)
            )
        enc = shared_encoded_suite(list(small_suite))
        hw = trained.repo.hw_encoder.encode_from_dataset(small_dataset, device)
        expected = trained.model.predict_one(enc.row(network), hw)
        assert response.ok
        assert response.latency_ms == expected

    def test_miss_reasons(self, registry, trained, small_suite, small_dataset):
        sig = trained.repo.signature_names
        with PredictionService(
            registry, list(small_suite), dataset=small_dataset
        ) as service:
            unknown = service.predict(
                PredictRequest(network="no-such-net", device=small_dataset.device_names[0])
            )
            cold = service.predict(
                PredictRequest(network=small_dataset.network_names[0], device="stranger")
            )
            partial = service.predict(
                PredictRequest(
                    network=small_dataset.network_names[0],
                    device="stranger",
                    signature_ms={sig[0]: 12.0},  # missing the rest
                )
            )
            onboarded = service.predict(
                PredictRequest(
                    network=small_dataset.network_names[0],
                    device="stranger",
                    signature_ms={
                        n: small_dataset.latency(small_dataset.device_names[3], n)
                        for n in sig
                    },
                )
            )
        assert unknown.error == "unknown_network"
        assert cold.error == "cold_device"
        assert partial.error == "signature"
        assert onboarded.ok and onboarded.latency_ms > 0

    def test_no_model_miss_on_empty_registry(
        self, tmp_path, small_suite, small_dataset
    ):
        empty = ModelRegistry(tmp_path / "none")
        with PredictionService(
            empty, list(small_suite), dataset=small_dataset
        ) as service:
            response = service.predict(
                PredictRequest(
                    network=small_dataset.network_names[0],
                    device=small_dataset.device_names[0],
                )
            )
        assert response.error == "no_model"

    def test_cold_cluster_routes_to_default(
        self, registry, trained, small_suite, small_dataset
    ):
        with PredictionService(
            registry, list(small_suite), dataset=small_dataset
        ) as service:
            response = service.predict(
                PredictRequest(
                    network=small_dataset.network_names[0],
                    device=small_dataset.device_names[0],
                    cluster="never-trained",
                )
            )
        assert response.ok
        assert response.cluster == "never-trained"
        assert response.served_cluster == DEFAULT_CLUSTER

    def test_cluster_specific_model_wins_over_default(
        self, registry, trained, small_suite, small_dataset
    ):
        registry.publish(trained.model, {"members": 12}, cluster="flagship")
        with PredictionService(
            registry, list(small_suite), dataset=small_dataset
        ) as service:
            response = service.predict(
                PredictRequest(
                    network=small_dataset.network_names[0],
                    device=small_dataset.device_names[0],
                    cluster="flagship",
                )
            )
        assert response.ok
        assert response.served_cluster == "flagship"
        assert service.model_versions() == {DEFAULT_CLUSTER: 1, "flagship": 1}

    def test_hot_swap_under_concurrent_readers(
        self, registry, trained, small_suite, small_dataset
    ):
        """Readers racing refresh() always get a complete model — either
        version, never an error, never a torn table."""
        stop = threading.Event()
        failures: list[str] = []
        versions_seen: set[int] = set()
        request = PredictRequest(
            network=small_dataset.network_names[0],
            device=small_dataset.device_names[0],
        )

        with PredictionService(
            registry,
            list(small_suite),
            dataset=small_dataset,
            max_batch=8,
            max_wait_ms=0.5,
        ) as service:

            def reader() -> None:
                while not stop.is_set():
                    response = service.predict(request, timeout=10.0)
                    if not response.ok:
                        failures.append(response.error)
                        return
                    versions_seen.add(response.model_version)

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for t in threads:
                t.start()
            published = {1}
            for _ in range(4):
                checkpoint = registry.publish(trained.model, {"members": 12})
                published.add(checkpoint.version)
                service.refresh()
                time.sleep(0.01)
            stop.set()
            for t in threads:
                t.join()
            final = service.predict(request)

        assert failures == []
        assert versions_seen <= published
        assert final.model_version == max(published)

    def test_refresh_reports_swapped_clusters_once(
        self, registry, trained, small_suite, small_dataset
    ):
        with PredictionService(
            registry, list(small_suite), dataset=small_dataset
        ) as service:
            assert service.refresh() == {}  # nothing new
            registry.publish(trained.model, {"members": 12})
            assert service.refresh() == {DEFAULT_CLUSTER: 2}
            assert service.refresh() == {}

    def test_warm_device_api(self, registry, trained, small_suite, small_dataset):
        sig = trained.repo.signature_names
        with PredictionService(registry, list(small_suite)) as service:
            assert not service.is_warm("late-device")
            service.warm_device(
                "late-device",
                {n: small_dataset.latency(small_dataset.device_names[5], n) for n in sig},
            )
            assert service.is_warm("late-device")
            response = service.predict(
                PredictRequest(
                    network=small_dataset.network_names[0], device="late-device"
                )
            )
        assert response.ok

    def test_asyncio_facade(self, registry, small_suite, small_dataset):
        import asyncio

        async def go(service):
            return await asyncio.gather(
                *[
                    service.predict_async(
                        PredictRequest(network=n, device=small_dataset.device_names[0])
                    )
                    for n in small_dataset.network_names[:5]
                ]
            )

        with PredictionService(
            registry, list(small_suite), dataset=small_dataset
        ) as service:
            responses = asyncio.run(go(service))
        assert all(r.ok for r in responses)

    def test_serve_telemetry_summary_block(
        self, registry, trained, small_suite, small_dataset
    ):
        profile = LoadProfile(
            n_requests=60, cold_fraction=0.25, unknown_fraction=0.1, seed=2
        )
        requests = build_requests(
            small_dataset, trained.repo.signature_names, profile
        )
        with telemetry.scoped_registry() as reg:
            with PredictionService(
                registry,
                list(small_suite),
                dataset=small_dataset,
                max_batch=16,
                max_wait_ms=1.0,
            ) as service:
                service.predict_many(requests)
            serve = telemetry.summarize(reg)["serve"]
        assert serve["requests"] == 60
        assert serve["warm_served"] + serve["cold_served"] + sum(
            serve["misses"].values()
        ) == 60
        assert serve["cold_served"] > 0
        assert serve["misses"].get("unknown_network", 0) > 0
        assert serve["batches"] >= 1
        assert serve["mean_batch_size"] > 1
        flushes = serve["flushes"]
        assert set(flushes) == {"full", "timeout", "shutdown"}
        assert sum(flushes.values()) == serve["batches"]
        assert serve["queue_depth"] is not None


# ---------------------------------------------------------------------------
# Load generator


class TestLoadGenerator:
    def test_request_stream_is_deterministic(self, trained, small_dataset):
        profile = LoadProfile(n_requests=50, cold_fraction=0.3, seed=9)
        first = build_requests(small_dataset, trained.repo.signature_names, profile)
        second = build_requests(small_dataset, trained.repo.signature_names, profile)
        assert first == second
        assert build_requests(
            small_dataset,
            trained.repo.signature_names,
            LoadProfile(n_requests=50, cold_fraction=0.3, seed=10),
        ) != first

    def test_cold_requests_carry_signatures(self, trained, small_dataset):
        profile = LoadProfile(n_requests=80, cold_fraction=0.5, seed=1)
        requests = build_requests(
            small_dataset, trained.repo.signature_names, profile
        )
        cold = [r for r in requests if r.signature_ms is not None]
        assert cold
        for request in cold:
            assert set(request.signature_ms) == set(trained.repo.signature_names)
        # Cold is a device-level property: a device is cold in every
        # request or none.
        by_device: dict[str, set[bool]] = {}
        for r in requests:
            by_device.setdefault(r.device, set()).add(r.signature_ms is not None)
        assert all(len(kinds) == 1 for kinds in by_device.values())

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            LoadProfile(n_requests=0)
        with pytest.raises(ValueError):
            LoadProfile(mode="sideways")
        with pytest.raises(ValueError):
            LoadProfile(cold_fraction=1.5)
        with pytest.raises(ValueError):
            LoadProfile(arrival="bursty")

    def test_open_and_closed_loops_agree_on_predictions(
        self, registry, trained, small_suite, small_dataset
    ):
        closed = LoadProfile(
            n_requests=60, mode="closed", concurrency=2,
            cold_fraction=0.2, unknown_fraction=0.05, seed=4,
        )
        open_loop = LoadProfile(
            n_requests=60, mode="open", rate_rps=5000.0,
            cold_fraction=0.2, unknown_fraction=0.05, seed=4,
        )
        requests = build_requests(
            small_dataset, trained.repo.signature_names, closed
        )
        with PredictionService(
            registry, list(small_suite), dataset=small_dataset, max_batch=16
        ) as service:
            closed_report = run_load(service, requests, closed)
        with PredictionService(
            registry, list(small_suite), dataset=small_dataset, max_batch=16
        ) as service:
            open_report = run_load(service, requests, open_loop)
        assert closed_report.digest() == open_report.digest()
        assert closed_report.n_errors == open_report.n_errors
        metrics = closed_report.metrics()
        assert metrics["throughput_rps"] > 0
        assert metrics["p99_ms"] >= metrics["p50_ms"] > 0

    def test_report_digest_tracks_predictions(self):
        from repro.serve.loadgen import LoadReport

        def report(values):
            return LoadReport(
                n_requests=len(values), n_errors=0, wall_s=1.0,
                throughput_rps=1.0, p50_ms=1.0, p99_ms=1.0, mean_ms=1.0,
                max_ms=1.0, predictions=np.array(values),
            )

        assert report([1.0, 2.0]).digest() == report([1.0, 2.0]).digest()
        assert report([1.0, 2.0]).digest() != report([1.0, 2.1]).digest()
