"""Tests for the CostModel assembly/training/prediction API."""

import numpy as np
import pytest

from repro.core.cost_model import CostModel, default_regressor
from repro.core.representation import NetworkEncoder, SignatureHardwareEncoder
from repro.ml.linear import RidgeRegression


@pytest.fixture(scope="module")
def fitted_model(small_suite, small_dataset):
    encoder = NetworkEncoder(list(small_suite))
    signature = small_dataset.network_names[:4]
    hw_encoder = SignatureHardwareEncoder(signature)
    model = CostModel(encoder, hw_encoder, default_regressor(0))
    device_hw = {
        d: hw_encoder.encode_from_dataset(small_dataset, d)
        for d in small_dataset.device_names[:16]
    }
    targets = [n for n in small_dataset.network_names if n not in signature]
    X, y = model.build_training_set(
        small_dataset, small_suite, device_hw, network_names=targets
    )
    model.fit(X, y)
    return model, hw_encoder, targets, X, y


class TestCostModel:
    def test_default_regressor_matches_paper_config(self):
        reg = default_regressor()
        assert reg.n_estimators == 100
        assert reg.learning_rate == 0.1
        assert reg.max_depth == 3

    def test_training_set_shape(self, fitted_model, small_suite):
        model, hw_encoder, targets, X, y = fitted_model
        assert X.shape == (16 * len(targets), model.network_encoder.width + 4)
        assert y.shape == (16 * len(targets),)
        assert (y > 0).all()

    def test_training_targets_match_dataset(
        self, fitted_model, small_suite, small_dataset
    ):
        model, hw_encoder, targets, X, y = fitted_model
        # Row 0 is (first device, first target network).
        assert y[0] == small_dataset.latency(small_dataset.device_names[0], targets[0])

    def test_train_fit_quality(self, fitted_model):
        model, _, _, X, y = fitted_model
        metrics = model.evaluate(X, y)
        assert metrics["r2"] > 0.9

    def test_generalizes_to_heldout_devices(
        self, fitted_model, small_suite, small_dataset
    ):
        model, hw_encoder, targets, _, _ = fitted_model
        heldout = {
            d: hw_encoder.encode_from_dataset(small_dataset, d)
            for d in small_dataset.device_names[16:]
        }
        X, y = model.build_training_set(
            small_dataset, small_suite, heldout, network_names=targets
        )
        assert model.evaluate(X, y)["r2"] > 0.6

    def test_predict_one(self, fitted_model, small_suite, small_dataset):
        model, hw_encoder, targets, _, _ = fitted_model
        nf = model.network_encoder.encode(small_suite[targets[0]])
        hf = hw_encoder.encode_from_dataset(
            small_dataset, small_dataset.device_names[0]
        )
        pred = model.predict_one(nf, hf)
        actual = small_dataset.latency(small_dataset.device_names[0], targets[0])
        assert pred > 0
        assert pred == pytest.approx(actual, rel=1.0)  # same order of magnitude

    def test_explicit_pairs(self, fitted_model, small_suite, small_dataset):
        model, hw_encoder, _, _, _ = fitted_model
        pairs = [
            (small_dataset.device_names[0], small_dataset.network_names[5]),
            (small_dataset.device_names[1], small_dataset.network_names[6]),
        ]
        device_hw = {
            d: hw_encoder.encode_from_dataset(small_dataset, d)
            for d, _ in pairs
        }
        X, y = model.build_training_set(small_dataset, small_suite, device_hw, pairs=pairs)
        assert X.shape[0] == 2
        assert y[1] == small_dataset.latency(*pairs[1])

    def test_assemble_validates_row_counts(self, fitted_model):
        model = fitted_model[0]
        with pytest.raises(ValueError, match="row counts"):
            model.assemble(np.ones((2, 3)), np.ones((3, 2)))

    def test_predict_before_fit_raises(self, small_suite):
        encoder = NetworkEncoder(list(small_suite))
        hw = SignatureHardwareEncoder(["a"])
        model = CostModel(encoder, hw)
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict(np.ones((1, encoder.width + 1)))

    def test_custom_regressor_supported(self, small_suite, small_dataset):
        encoder = NetworkEncoder(list(small_suite))
        signature = small_dataset.network_names[:4]
        hw_encoder = SignatureHardwareEncoder(signature)
        model = CostModel(encoder, hw_encoder, RidgeRegression(alpha=1.0))
        device_hw = {
            d: hw_encoder.encode_from_dataset(small_dataset, d)
            for d in small_dataset.device_names
        }
        X, y = model.build_training_set(small_dataset, small_suite, device_hw)
        model.fit(X, y)
        assert model.evaluate(X, y)["r2"] > 0.5


class TestVectorizedAssembly:
    """The fancy-indexed build must match the seed's per-row loop."""

    def _legacy_build(self, model, dataset, suite, device_hw, pairs):
        rows, targets = [], []
        for device, network in pairs:
            net = model.network_encoder.encode(suite[network])
            hw = device_hw[device]
            rows.append(np.concatenate([net, np.asarray(hw, dtype=float)]))
            targets.append(dataset.latency(device, network))
        return np.asarray(rows), np.asarray(targets)

    def test_matches_legacy_loop(self, small_suite, small_dataset):
        encoder = NetworkEncoder(list(small_suite))
        hw_encoder = SignatureHardwareEncoder(small_dataset.network_names[:3])
        model = CostModel(encoder, hw_encoder, default_regressor(0))
        device_hw = {
            d: hw_encoder.encode_from_dataset(small_dataset, d)
            for d in small_dataset.device_names[:5]
        }
        rng = np.random.default_rng(0)
        pairs = [
            (d, n)
            for d in small_dataset.device_names[:5]
            for n in rng.choice(small_dataset.network_names, size=7, replace=False)
        ]
        X, y = model.build_training_set(
            small_dataset, small_suite, device_hw, pairs=pairs
        )
        X_ref, y_ref = self._legacy_build(
            model, small_dataset, small_suite, device_hw, pairs
        )
        assert np.array_equal(X, X_ref)
        assert np.array_equal(y, y_ref)

    def test_network_features_skip_encoding(self, small_suite, small_dataset):
        encoder = NetworkEncoder(list(small_suite))
        hw_encoder = SignatureHardwareEncoder(small_dataset.network_names[:3])
        model = CostModel(encoder, hw_encoder, default_regressor(0))
        device_hw = {
            d: hw_encoder.encode_from_dataset(small_dataset, d)
            for d in small_dataset.device_names[:3]
        }
        features = {
            n: encoder.encode(small_suite[n]) for n in small_dataset.network_names
        }
        X, y = model.build_training_set(
            small_dataset, small_suite, device_hw, network_features=features
        )
        X_ref, y_ref = model.build_training_set(
            small_dataset, small_suite, device_hw
        )
        assert np.array_equal(X, X_ref)
        assert np.array_equal(y, y_ref)

    def test_network_features_width_validated(self, small_suite, small_dataset):
        encoder = NetworkEncoder(list(small_suite))
        hw_encoder = SignatureHardwareEncoder(small_dataset.network_names[:3])
        model = CostModel(encoder, hw_encoder, default_regressor(0))
        device_hw = {
            small_dataset.device_names[0]: hw_encoder.encode_from_dataset(
                small_dataset, small_dataset.device_names[0]
            )
        }
        bad = {n: np.ones(3) for n in small_dataset.network_names}
        with pytest.raises(ValueError, match="width"):
            model.build_training_set(
                small_dataset, small_suite, device_hw, network_features=bad
            )

    def test_empty_pairs(self, small_suite, small_dataset):
        encoder = NetworkEncoder(list(small_suite))
        hw_encoder = SignatureHardwareEncoder(small_dataset.network_names[:3])
        model = CostModel(encoder, hw_encoder, default_regressor(0))
        X, y = model.build_training_set(small_dataset, small_suite, {}, pairs=[])
        assert X.shape == (0, encoder.width + 3)
        assert y.shape == (0,)
