"""Tests for the evaluation protocols (device split, cluster split)."""

import numpy as np
import pytest

from repro.analysis.clustering import cluster_devices
from repro.core.evaluation import (
    cluster_split_evaluation,
    device_split_evaluation,
)
from repro.core.signature import select_signature_set
from repro.dataset.dataset import LatencyDataset


class TestDeviceSplitEvaluation:
    @pytest.fixture(scope="class")
    def result(self, small_dataset, small_suite):
        return device_split_evaluation(
            small_dataset,
            small_suite,
            signature_size=4,
            method="rs",
            split_seed=0,
            selection_rng=0,
        )

    def test_split_is_70_30(self, result, small_dataset):
        n = small_dataset.n_devices
        assert len(result.test_devices) == round(0.3 * n)
        assert len(result.train_devices) + len(result.test_devices) == n
        assert not set(result.train_devices) & set(result.test_devices)

    def test_signature_networks_excluded_from_targets(self, result, small_dataset):
        n_targets = small_dataset.n_networks - len(result.signature_names)
        assert result.y_true.size == len(result.test_devices) * n_targets

    def test_r2_reasonable(self, result):
        assert 0.0 < result.r2 <= 1.0

    def test_predictions_aligned(self, result):
        assert result.y_true.shape == result.y_pred.shape
        assert (result.y_true > 0).all()

    def test_signature_size_respected(self, result):
        assert len(result.signature_names) == 4

    def test_deterministic(self, small_dataset, small_suite):
        kwargs = dict(signature_size=3, method="rs", split_seed=1, selection_rng=1)
        a = device_split_evaluation(small_dataset, small_suite, **kwargs)
        b = device_split_evaluation(small_dataset, small_suite, **kwargs)
        assert a.r2 == b.r2
        assert a.signature_names == b.signature_names

    def test_methods_dispatch(self, small_dataset, small_suite):
        for method in ("rs", "mis", "sccs"):
            res = device_split_evaluation(
                small_dataset, small_suite, signature_size=3, method=method,
                split_seed=0, selection_rng=0,
            )
            assert res.method == method
            assert res.r2 > 0.0


class TestClusterSplitEvaluation:
    def test_train_test_disjoint_by_cluster(self, small_dataset, small_suite):
        _, labels = cluster_devices(small_dataset)
        result = cluster_split_evaluation(
            small_dataset, small_suite, labels, test_cluster=2,
            signature_size=3, method="rs", selection_rng=0,
        )
        test_set = set(result.test_devices)
        for name, label in zip(small_dataset.device_names, labels):
            assert (name in test_set) == (label == 2)

    def test_label_length_validated(self, small_dataset, small_suite):
        with pytest.raises(ValueError, match="per device"):
            cluster_split_evaluation(
                small_dataset, small_suite, np.zeros(3), test_cluster=0
            )

    def test_empty_cluster_rejected(self, small_dataset, small_suite):
        labels = np.zeros(small_dataset.n_devices)
        with pytest.raises(ValueError, match="no devices"):
            cluster_split_evaluation(
                small_dataset, small_suite, labels, test_cluster=7
            )


class TestPartialDatasetEvaluation:
    """A fault-tolerant campaign leaves NaN cells; evaluation must mask
    them, never rank or regress on them."""

    @pytest.fixture(scope="class")
    def partial(self, small_dataset):
        # "rs" selection ignores matrix values, so the signature is the
        # same on partial and complete data and we can NaN a known
        # *target* cell without circularity.
        sig = set(
            select_signature_set(small_dataset.latencies_ms, 4, "rs", rng=0)
        )
        target_col = next(
            j for j in range(small_dataset.n_networks) if j not in sig
        )
        matrix = small_dataset.latencies_ms.copy()
        matrix[0, :] = np.nan  # quarantined device
        matrix[1, target_col] = np.nan  # healthy device, one missing cell
        return LatencyDataset(
            matrix, small_dataset.device_names, small_dataset.network_names
        )

    @pytest.fixture(scope="class")
    def result(self, partial, small_suite):
        return device_split_evaluation(
            partial, small_suite, signature_size=4, method="rs",
            split_seed=0, selection_rng=0,
        )

    def test_metrics_finite(self, result):
        assert np.isfinite(result.r2)
        assert np.isfinite(result.rmse_ms)
        assert np.isfinite(result.y_true).all()
        assert np.isfinite(result.y_pred).all()

    def test_quarantined_device_dropped(self, result, partial):
        kept = set(result.train_devices) | set(result.test_devices)
        assert partial.device_names[0] not in kept
        assert partial.device_names[1] in kept

    def test_missing_target_cells_excluded(self, result, partial):
        test_rows = [partial.device_index(d) for d in result.test_devices]
        target_cols = [
            j
            for j, name in enumerate(partial.network_names)
            if name not in result.signature_names
        ]
        observed = np.isfinite(
            partial.latencies_ms[np.ix_(test_rows, target_cols)]
        ).sum()
        assert result.y_true.size == observed

    def test_empty_test_side_rejected(self, partial, small_suite):
        labels = np.zeros(partial.n_devices, dtype=int)
        labels[0] = 1  # the quarantined device is the whole test cluster
        with pytest.raises(ValueError, match="signature"):
            cluster_split_evaluation(
                partial, small_suite, labels, test_cluster=1,
                signature_size=4, method="rs", selection_rng=0,
            )


class TestQuantizedProtocolParity:
    """The quantize-once fast path must be byte-identical to the seed
    protocol (frozen in ``benchmarks/legacy_train.py``), on complete
    and on NaN-holed datasets (which take the generic slow path)."""

    @pytest.mark.parametrize("method", ["rs", "mis"])
    def test_matches_seed_protocol(self, small_dataset, small_suite, method):
        from benchmarks.legacy_train import legacy_device_split_evaluation

        result = device_split_evaluation(
            small_dataset, small_suite, signature_size=4, method=method,
            split_seed=0, selection_rng=0,
        )
        ref = legacy_device_split_evaluation(
            small_dataset, small_suite, signature_size=4, method=method,
            split_seed=0, selection_rng=0,
        )
        assert list(result.signature_names) == list(ref["signature_names"])
        assert result.r2 == ref["r2"]
        assert result.rmse_ms == ref["rmse_ms"]
        assert np.array_equal(result.y_true, ref["y_true"])
        assert np.array_equal(result.y_pred, ref["y_pred"])

    def test_matches_seed_protocol_with_missing_cells(
        self, small_dataset, small_suite
    ):
        from benchmarks.legacy_train import legacy_device_split_evaluation

        matrix = small_dataset.latencies_ms.copy()
        sig = set(select_signature_set(matrix, 4, "rs", rng=0))
        target_col = next(
            j for j in range(small_dataset.n_networks) if j not in sig
        )
        matrix[1, target_col] = np.nan
        partial = LatencyDataset(
            matrix, small_dataset.device_names, small_dataset.network_names
        )
        result = device_split_evaluation(
            partial, small_suite, signature_size=4, method="rs",
            split_seed=0, selection_rng=0,
        )
        ref = legacy_device_split_evaluation(
            partial, small_suite, signature_size=4, method="rs",
            split_seed=0, selection_rng=0,
        )
        assert result.r2 == ref["r2"]
        assert np.array_equal(result.y_true, ref["y_true"])
        assert np.array_equal(result.y_pred, ref["y_pred"])

    def test_sweep_reuses_shared_quantization(self, small_dataset, small_suite):
        from repro import telemetry
        from repro.core.evaluation import signature_size_sweep
        from repro.core.representation import clear_suite_memo

        kwargs = dict(sizes=[3, 5], methods=("rs",), backend="serial")
        with telemetry.scoped_registry() as reg:
            clear_suite_memo()
            first = signature_size_sweep(small_dataset, small_suite, **kwargs)
            misses = reg.counter_value("train.bin_reuse_misses")
            hits_after_first = reg.counter_value("train.bin_reuse_hits")
            second = signature_size_sweep(small_dataset, small_suite, **kwargs)
            hits = reg.counter_value("train.bin_reuse_hits")
        assert first == second
        # One encoder/binning build total; every further cell reuses it.
        assert misses == 1
        assert hits > hits_after_first
