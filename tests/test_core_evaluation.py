"""Tests for the evaluation protocols (device split, cluster split)."""

import numpy as np
import pytest

from repro.analysis.clustering import cluster_devices
from repro.core.evaluation import (
    cluster_split_evaluation,
    device_split_evaluation,
)


class TestDeviceSplitEvaluation:
    @pytest.fixture(scope="class")
    def result(self, small_dataset, small_suite):
        return device_split_evaluation(
            small_dataset,
            small_suite,
            signature_size=4,
            method="rs",
            split_seed=0,
            selection_rng=0,
        )

    def test_split_is_70_30(self, result, small_dataset):
        n = small_dataset.n_devices
        assert len(result.test_devices) == round(0.3 * n)
        assert len(result.train_devices) + len(result.test_devices) == n
        assert not set(result.train_devices) & set(result.test_devices)

    def test_signature_networks_excluded_from_targets(self, result, small_dataset):
        n_targets = small_dataset.n_networks - len(result.signature_names)
        assert result.y_true.size == len(result.test_devices) * n_targets

    def test_r2_reasonable(self, result):
        assert 0.0 < result.r2 <= 1.0

    def test_predictions_aligned(self, result):
        assert result.y_true.shape == result.y_pred.shape
        assert (result.y_true > 0).all()

    def test_signature_size_respected(self, result):
        assert len(result.signature_names) == 4

    def test_deterministic(self, small_dataset, small_suite):
        kwargs = dict(signature_size=3, method="rs", split_seed=1, selection_rng=1)
        a = device_split_evaluation(small_dataset, small_suite, **kwargs)
        b = device_split_evaluation(small_dataset, small_suite, **kwargs)
        assert a.r2 == b.r2
        assert a.signature_names == b.signature_names

    def test_methods_dispatch(self, small_dataset, small_suite):
        for method in ("rs", "mis", "sccs"):
            res = device_split_evaluation(
                small_dataset, small_suite, signature_size=3, method=method,
                split_seed=0, selection_rng=0,
            )
            assert res.method == method
            assert res.r2 > 0.0


class TestClusterSplitEvaluation:
    def test_train_test_disjoint_by_cluster(self, small_dataset, small_suite):
        _, labels = cluster_devices(small_dataset)
        result = cluster_split_evaluation(
            small_dataset, small_suite, labels, test_cluster=2,
            signature_size=3, method="rs", selection_rng=0,
        )
        test_set = set(result.test_devices)
        for name, label in zip(small_dataset.device_names, labels):
            assert (name in test_set) == (label == 2)

    def test_label_length_validated(self, small_dataset, small_suite):
        with pytest.raises(ValueError, match="per device"):
            cluster_split_evaluation(
                small_dataset, small_suite, np.zeros(3), test_cluster=0
            )

    def test_empty_cluster_rejected(self, small_dataset, small_suite):
        labels = np.zeros(small_dataset.n_devices)
        with pytest.raises(ValueError, match="no devices"):
            cluster_split_evaluation(
                small_dataset, small_suite, labels, test_cluster=7
            )
