"""Tests for the content-addressed artifact cache."""

import numpy as np
import pytest

from repro.cache import CACHE_VERSION, ArtifactCache, CampaignCheckpoint, content_key
from repro.dataset.dataset import LatencyDataset


@pytest.fixture()
def dataset():
    return LatencyDataset(
        np.array([[1.0, 2.0], [3.0, 4.0]]), ["dev_a", "dev_b"], ["net_x", "net_y"]
    )


CONFIG = {"seed": 0, "n_devices": 2, "harness": {"runs": 30, "sigma": 0.05}}


class TestContentKey:
    def test_stable_and_order_independent(self):
        reordered = {"n_devices": 2, "harness": {"sigma": 0.05, "runs": 30}, "seed": 0}
        assert content_key(CONFIG) == content_key(reordered)

    def test_tuple_and_list_equivalent(self):
        assert content_key({"sizes": (1, 2)}) == content_key({"sizes": [1, 2]})

    def test_any_value_change_changes_key(self):
        changed = {**CONFIG, "seed": 1}
        assert content_key(CONFIG) != content_key(changed)
        nested = {**CONFIG, "harness": {"runs": 31, "sigma": 0.05}}
        assert content_key(CONFIG) != content_key(nested)


class TestRoundTrip:
    def test_store_then_load(self, tmp_path, dataset):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset, extra_metadata={"note": "hi"})
        loaded = cache.load_dataset("lat", CONFIG)
        assert loaded is not None
        assert loaded.device_names == dataset.device_names
        assert np.array_equal(loaded.latencies_ms, dataset.latencies_ms)
        meta = cache.load_metadata("lat", CONFIG)
        assert meta["note"] == "hi"
        assert meta["cache_version"] == CACHE_VERSION

    def test_miss_on_different_config(self, tmp_path, dataset):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset)
        assert cache.load_dataset("lat", {**CONFIG, "seed": 9}) is None

    def test_no_temp_files_left_behind(self, tmp_path, dataset):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_record_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        record = {"r2": 0.94, "method": "mis", "signature": ["a", "b"]}
        cache.store_record("fit", CONFIG, record)
        loaded = cache.load_record("fit", CONFIG)
        assert loaded == {"r2": 0.94, "method": "mis", "signature": ["a", "b"]}
        assert cache.load_record("fit", {**CONFIG, "seed": 5}) is None


class TestCorruptionTolerance:
    def test_corrupt_npz_is_evicted_not_raised(self, tmp_path, dataset):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset)
        data_path, meta_path = cache.entry_paths("lat", CONFIG)
        data_path.write_bytes(b"not an npz at all")
        assert cache.load_dataset("lat", CONFIG) is None
        assert not data_path.exists() and not meta_path.exists()

    def test_corrupt_metadata_is_evicted(self, tmp_path, dataset):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset)
        data_path, meta_path = cache.entry_paths("lat", CONFIG)
        meta_path.write_text("{truncated")
        assert cache.load_dataset("lat", CONFIG) is None
        assert not data_path.exists()

    def test_missing_metadata_is_a_miss(self, tmp_path, dataset):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset)
        _, meta_path = cache.entry_paths("lat", CONFIG)
        meta_path.unlink()
        assert cache.load_dataset("lat", CONFIG) is None

    def test_version_mismatch_is_evicted(self, tmp_path, dataset, monkeypatch):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset)
        _, meta_path = cache.entry_paths("lat", CONFIG)
        payload = meta_path.read_text().replace(
            f'"cache_version": {CACHE_VERSION}', '"cache_version": 0'
        )
        meta_path.write_text(payload)
        data_path, _ = cache.entry_paths("lat", CONFIG)
        assert cache.load_dataset("lat", CONFIG) is None
        assert not data_path.exists()

    def test_recompute_after_eviction_round_trips(self, tmp_path, dataset):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset)
        data_path, _ = cache.entry_paths("lat", CONFIG)
        data_path.write_bytes(b"garbage")
        assert cache.load_dataset("lat", CONFIG) is None
        cache.store_dataset("lat", CONFIG, dataset)
        assert cache.load_dataset("lat", CONFIG) is not None


class TestMaintenance:
    def test_evict_is_idempotent(self, tmp_path, dataset):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset)
        cache.evict("lat", CONFIG)
        cache.evict("lat", CONFIG)
        assert cache.load_dataset("lat", CONFIG) is None

    def test_clear_removes_entries(self, tmp_path, dataset):
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("a", CONFIG, dataset)
        cache.store_dataset("b", {**CONFIG, "seed": 2}, dataset)
        assert cache.clear() == 4  # two .npz + two .json
        assert list(tmp_path.iterdir()) == []

    def test_clear_on_missing_root(self, tmp_path):
        assert ArtifactCache(tmp_path / "nowhere").clear() == 0


class TestTelemetryCounters:
    def test_cold_hit_and_corrupt_misses_are_distinct(self, tmp_path, dataset):
        """A corrupted-entry eviction is not a plain cold miss."""
        from repro import telemetry

        cache = ArtifactCache(tmp_path)
        with telemetry.scoped_registry() as reg:
            assert cache.load_dataset("lat", CONFIG) is None  # cold miss
            cache.store_dataset("lat", CONFIG, dataset)
            assert cache.load_dataset("lat", CONFIG) is not None  # hit
            data_path, _ = cache.entry_paths("lat", CONFIG)
            data_path.write_bytes(b"garbage")
            assert cache.load_dataset("lat", CONFIG) is None  # corrupt miss
            assert reg.counter_value("cache.miss.cold") == 1
            assert reg.counter_value("cache.hit") == 1
            assert reg.counter_value("cache.miss.corrupt") == 1
            assert reg.counter_value("cache.store") == 1
            assert reg.counter_value("cache.evict") == 1

    def test_bad_metadata_counts_as_corrupt(self, tmp_path, dataset):
        from repro import telemetry

        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset)
        _, meta_path = cache.entry_paths("lat", CONFIG)
        meta_path.write_text("{broken")
        with telemetry.scoped_registry() as reg:
            assert cache.load_dataset("lat", CONFIG) is None
            assert reg.counter_value("cache.miss.corrupt") == 1
            assert reg.counter_value("cache.miss.cold") == 0

    def test_counters_silent_when_disabled(self, tmp_path, dataset):
        from repro import telemetry

        assert not telemetry.enabled()
        cache = ArtifactCache(tmp_path)
        cache.store_dataset("lat", CONFIG, dataset)
        assert cache.load_dataset("lat", CONFIG) is not None


class TestCampaignCheckpoint:
    def test_store_load_round_trip(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        row = np.array([1.0, 2.5, np.nan])
        cp.store_row("dev/0 (exynos)", row)  # hostile characters in name
        loaded = cp.load_row("dev/0 (exynos)", 3)
        assert np.array_equal(loaded, row, equal_nan=True)
        assert cp.load_row("dev_other", 3) is None

    def test_directory_keyed_by_config(self, tmp_path):
        a = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        b = CampaignCheckpoint(tmp_path, "camp", {**CONFIG, "seed": 9})
        assert a.directory != b.directory
        a.store_row("dev", np.array([1.0]))
        assert b.load_row("dev", 1) is None

    def test_wrong_width_is_evicted(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_row("dev", np.array([1.0, 2.0]))
        assert cp.load_row("dev", 3) is None
        assert not cp.row_path("dev").exists()

    def test_garbage_file_is_evicted(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_row("dev", np.array([1.0]))
        cp.row_path("dev").write_bytes(b"not an npz")
        assert cp.load_row("dev", 1) is None
        assert not cp.row_path("dev").exists()

    def test_invalid_values_are_evicted(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_row("inf_dev", np.array([1.0, np.inf]))
        cp.store_row("neg_dev", np.array([1.0, -2.0]))
        assert cp.load_row("inf_dev", 2) is None
        assert cp.load_row("neg_dev", 2) is None

    def test_all_nan_row_is_legitimate(self, tmp_path):
        # A quarantined device checkpoints as NaN and must load back.
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_row("dev", np.full(4, np.nan))
        loaded = cp.load_row("dev", 4)
        assert loaded is not None and np.isnan(loaded).all()

    def test_clear_and_no_temp_files(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_row("a", np.array([1.0]))
        cp.store_row("b", np.array([2.0]))
        assert not [p for p in cp.directory.iterdir() if ".tmp" in p.name]
        cp.clear()
        assert cp.load_row("a", 1) is None and cp.load_row("b", 1) is None

    def test_telemetry_counters(self, tmp_path):
        from repro import telemetry

        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        with telemetry.scoped_registry() as reg:
            cp.store_row("dev", np.array([1.0]))
            assert cp.load_row("dev", 1) is not None
            cp.row_path("dev").write_bytes(b"junk")
            assert cp.load_row("dev", 1) is None
            assert reg.counter_value("checkpoint.store") == 1
            assert reg.counter_value("checkpoint.hit") == 1
            assert reg.counter_value("checkpoint.corrupt") == 1


class TestCheckpointChunks:
    def test_store_rows_then_load_rows_round_trip(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        rows = np.array([[1.0, 2.0, 3.0], [4.0, np.nan, 6.0]])
        path = cp.store_rows(["dev-a", "dev/b (odd)"], rows)
        assert path.name.startswith("chunk-")
        loaded = cp.load_rows(3)
        assert set(loaded) == {"dev-a", "dev/b (odd)"}
        assert np.array_equal(loaded["dev-a"], rows[0])
        assert np.array_equal(loaded["dev/b (odd)"], rows[1], equal_nan=True)

    def test_shape_mismatch_raises(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        with pytest.raises(ValueError, match="rows"):
            cp.store_rows(["a", "b"], np.ones((3, 2)))
        with pytest.raises(ValueError, match="rows"):
            cp.store_rows(["a"], np.ones(4))

    def test_chunks_and_row_files_resume_interchangeably(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_rows(["chunked"], np.array([[1.0, 2.0]]))
        cp.store_row("rowed", np.array([3.0, 4.0]))
        loaded = cp.load_rows(2)
        assert set(loaded) == {"chunked", "rowed"}

    def test_corrupt_chunk_is_evicted_wholesale(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        path = cp.store_rows(["a", "b"], np.ones((2, 2)))
        path.write_bytes(b"not an npz")
        assert cp.load_rows(2) == {}
        assert not path.exists()

    def test_invalid_row_inside_chunk_is_skipped_not_fatal(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_rows(["good", "bad"], np.array([[1.0, 2.0], [1.0, -5.0]]))
        loaded = cp.load_rows(2)
        assert set(loaded) == {"good"}

    def test_wrong_width_chunk_rows_are_skipped(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_rows(["dev"], np.ones((1, 3)))
        assert cp.load_rows(4) == {}

    def test_store_rows_leaves_no_temp_files(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_rows(["a"], np.ones((1, 2)))
        assert not [p for p in cp.directory.iterdir() if ".tmp" in p.name]

    def test_chunk_telemetry_counters(self, tmp_path):
        from repro import telemetry

        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        with telemetry.scoped_registry() as reg:
            cp.store_rows(["a", "b"], np.ones((2, 2)))
            assert reg.counter_value("checkpoint.store_chunk") == 1
            assert reg.counter_value("checkpoint.store") == 2
            assert len(cp.load_rows(2)) == 2
            assert reg.counter_value("checkpoint.hit") == 2


class TestCheckpointForeignFiles:
    """load_rows must never open or delete files it did not write."""

    def test_foreign_entries_skipped_with_warning(self, tmp_path):
        from repro import telemetry

        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_row("dev", np.array([1.0, 2.0]))
        readme = cp.directory / "README.txt"
        readme.write_text("hands off")
        orphan = cp.directory / "chunk-0123456789ab.npz.tmp"
        orphan.write_bytes(b"half-written flush")
        subdir = cp.directory / "nested"
        subdir.mkdir()
        with telemetry.scoped_registry() as reg:
            with pytest.warns(RuntimeWarning, match="foreign"):
                loaded = cp.load_rows(2)
            assert reg.counter_value("checkpoint.foreign") == 3
            assert reg.counter_value("checkpoint.corrupt") == 0
        assert set(loaded) == {"dev"}
        # Foreign files survive untouched — they may belong to another
        # process (an in-flight tempfile) or the user (notes).
        assert readme.read_text() == "hands off"
        assert orphan.exists() and subdir.is_dir()

    def test_no_warning_when_directory_is_clean(self, tmp_path):
        import warnings as _warnings

        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_row("dev", np.array([1.0]))
        cp.store_rows(["other"], np.array([[2.0]]))
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            loaded = cp.load_rows(1)
        assert set(loaded) == {"dev", "other"}


class TestCheckpointReconciliation:
    """A --resume after block_size changed can leave the same device in
    a chunk and a per-device row file; the winner must be deterministic
    (last-complete-wins), not directory-listing order."""

    @staticmethod
    def _set_mtime(path, ns):
        import os

        os.utime(path, ns=(ns, ns))

    def test_most_observed_wins_regardless_of_mtime(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        chunk = cp.store_rows(["dev"], np.array([[1.0, np.nan, np.nan]]))
        row = cp.store_row("dev", np.array([9.0, 9.5, np.nan]))
        # The sparser chunk is *newer* — completeness still wins.
        self._set_mtime(row, 1_000_000_000_000_000_000)
        self._set_mtime(chunk, 2_000_000_000_000_000_000)
        loaded = cp.load_rows(3)
        assert np.array_equal(loaded["dev"], [9.0, 9.5, np.nan], equal_nan=True)

    def test_equal_observed_newest_mtime_wins(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        chunk = cp.store_rows(["dev"], np.array([[1.0, 2.0]]))
        row = cp.store_row("dev", np.array([9.0, 9.5]))
        self._set_mtime(row, 1_000_000_000_000_000_000)
        self._set_mtime(chunk, 2_000_000_000_000_000_000)
        assert np.array_equal(cp.load_rows(2)["dev"], [1.0, 2.0])
        # Flip the clock: now the per-device row is the later flush.
        self._set_mtime(chunk, 1_000_000_000_000_000_000)
        self._set_mtime(row, 2_000_000_000_000_000_000)
        assert np.array_equal(cp.load_rows(2)["dev"], [9.0, 9.5])

    def test_exact_tie_prefers_per_device_row(self, tmp_path):
        # Same observed count, same mtime: the fault-path per-device
        # file outranks the bulk chunk flush.
        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        chunk = cp.store_rows(["dev"], np.array([[1.0, 2.0]]))
        row = cp.store_row("dev", np.array([9.0, 9.5]))
        self._set_mtime(chunk, 1_500_000_000_000_000_000)
        self._set_mtime(row, 1_500_000_000_000_000_000)
        assert np.array_equal(cp.load_rows(2)["dev"], [9.0, 9.5])

    def test_duplicates_counted_and_resolution_is_stable(self, tmp_path):
        from repro import telemetry

        cp = CampaignCheckpoint(tmp_path, "camp", CONFIG)
        cp.store_rows(["dev", "other"], np.array([[1.0, 2.0], [3.0, 4.0]]))
        cp.store_rows(["dev"], np.array([[5.0, 6.0]]))
        cp.store_row("dev", np.array([9.0, 9.5]))
        with telemetry.scoped_registry() as reg:
            first = cp.load_rows(2)
            assert reg.counter_value("checkpoint.duplicate") == 2
        assert set(first) == {"dev", "other"}
        # Re-running the scan gives the identical winner.
        second = cp.load_rows(2)
        assert np.array_equal(first["dev"], second["dev"])
