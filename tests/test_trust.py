"""Tests for the trust layer: robust aggregation, admission, reputation."""

import numpy as np
import pytest

from repro import telemetry
from repro.trust import (
    AGGREGATES,
    AdmissionController,
    AdmissionPolicy,
    ReputationLedger,
    robust_aggregate,
    robust_zscores,
)


class TestRobustAggregate:
    RUNS = np.array([10.0, 10.2, 9.8, 10.1, 9.9, 10.3, 9.7, 10.0, 10.2, 9.8])

    def test_mean_is_plain_mean_byte_identical(self):
        assert robust_aggregate(self.RUNS, "mean") == float(self.RUNS.mean())

    def test_median(self):
        assert robust_aggregate(self.RUNS, "median") == float(np.median(self.RUNS))

    def test_trimmed_drops_outliers(self):
        contaminated = np.append(self.RUNS, 1e6)
        assert robust_aggregate(contaminated, "mean") > 1e4
        trimmed = robust_aggregate(contaminated, "trimmed")
        assert trimmed == pytest.approx(10.0, rel=0.05)

    def test_trimmed_small_sample_falls_back_to_median(self):
        tiny = np.array([1.0, 2.0, 100.0])
        # size // 10 == 0 -> nothing to trim; still robust via median? No:
        # k == 0 keeps all values, so the fallback only fires when
        # trimming would leave nothing.
        assert robust_aggregate(tiny, "trimmed") == float(tiny.mean())

    def test_huber_resists_contamination(self):
        contaminated = np.append(self.RUNS, 1e6)
        huber = robust_aggregate(contaminated, "huber")
        assert huber == pytest.approx(10.0, rel=0.05)

    def test_huber_zero_spread_returns_center(self):
        assert robust_aggregate(np.full(5, 7.0), "huber") == 7.0

    def test_all_methods_agree_on_symmetric_data(self):
        for method in AGGREGATES:
            assert robust_aggregate(self.RUNS, method) == pytest.approx(10.0, abs=0.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero runs"):
            robust_aggregate(np.array([]), "mean")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            robust_aggregate(self.RUNS, "mode")

    def test_zscores_flag_outlier(self):
        values = np.array([1.0, 1.1, 0.9, 1.05, 0.95, 50.0])
        z = robust_zscores(values)
        assert z[-1] > 10
        assert (z[:-1] < 3).all()


class TestAdmissionPolicy:
    def test_defaults_valid(self):
        AdmissionPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_latency_ms": 0.0},
            {"min_latency_ms": 10.0, "max_latency_ms": 5.0},
            {"max_duplicate_fraction": 1.5},
            {"speed_z_threshold": 0.0},
            {"cross_log_tolerance": -1.0},
            {"cell_z_threshold": 0.0},
            {"max_violation_fraction": 1.0},
            {"min_peers": 1},
            {"min_cluster_devices": 2},
            {"quarantine_after": 0},
            {"probation_successes": 0},
        ],
    )
    def test_invalid_thresholds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)


class TestReputationLedger:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReputationLedger(quarantine_after=0)
        with pytest.raises(ValueError):
            ReputationLedger(probation_successes=0)

    def test_quarantine_after_n_consecutive_rejections(self):
        ledger = ReputationLedger(quarantine_after=3)
        assert ledger.record("dev", clean=False) == "rejected"
        assert ledger.record("dev", clean=False) == "rejected"
        assert ledger.record("dev", clean=False) == "quarantined"
        assert ledger.is_quarantined("dev")

    def test_clean_submission_resets_consecutive_count(self):
        ledger = ReputationLedger(quarantine_after=3)
        ledger.record("dev", clean=False)
        ledger.record("dev", clean=False)
        assert ledger.record("dev", clean=True) == "accepted"
        # The streak restarted: two more rejections do not quarantine.
        ledger.record("dev", clean=False)
        assert ledger.record("dev", clean=False) == "rejected"
        assert not ledger.is_quarantined("dev")

    def test_probation_rehabilitation(self):
        ledger = ReputationLedger(quarantine_after=2, probation_successes=2)
        ledger.record("dev", clean=False)
        assert ledger.record("dev", clean=False) == "quarantined"
        # First clean screen advances probation but is NOT admitted.
        assert ledger.record("dev", clean=True) == "rejected"
        assert ledger.is_quarantined("dev")
        # Second consecutive clean screen completes probation.
        assert ledger.record("dev", clean=True) == "rehabilitated"
        assert not ledger.is_quarantined("dev")

    def test_unclean_during_probation_resets_progress(self):
        ledger = ReputationLedger(quarantine_after=1, probation_successes=2)
        assert ledger.record("dev", clean=False) == "quarantined"
        assert ledger.record("dev", clean=True) == "rejected"
        # A dirty screen while on probation restarts the clock.
        assert ledger.record("dev", clean=False) == "quarantined"
        assert ledger.record("dev", clean=True) == "rejected"
        assert ledger.record("dev", clean=True) == "rehabilitated"

    def test_score_is_laplace_smoothed(self):
        ledger = ReputationLedger()
        assert ledger.reputation("fresh").score == 0.5
        ledger.record("dev", clean=True)
        ledger.record("dev", clean=True)
        ledger.record("dev", clean=False)
        assert ledger.reputation("dev").score == pytest.approx(3 / 5)

    def test_devices_are_independent(self):
        ledger = ReputationLedger(quarantine_after=1)
        ledger.record("bad", clean=False)
        assert ledger.is_quarantined("bad")
        assert ledger.record("good", clean=True) == "accepted"


_SIG = tuple(f"net_{j}" for j in range(8))
_BASE = np.array([20.0, 35.0, 50.0, 80.0, 120.0, 200.0, 320.0, 500.0])


def _seeded_controller(n_members: int = 8, policy: AdmissionPolicy | None = None):
    """A controller with ``n_members`` honest profiles already admitted.

    Members span a modest speed range with small per-cell jitter, like
    the simulated fleet.
    """
    controller = AdmissionController(_SIG, policy=policy or AdmissionPolicy())
    rng = np.random.default_rng(0)
    for i in range(n_members):
        speed = 1.0 + 0.15 * i
        jitter = np.exp(rng.normal(0.0, 0.02, size=_BASE.size))
        decision = controller.submit(f"member_{i}", _BASE * speed * jitter)
        assert decision.admitted, decision
    return controller


class TestAdmissionController:
    def test_unbound_controller_refuses_to_screen(self):
        controller = AdmissionController(())
        with pytest.raises(RuntimeError, match="bind"):
            controller.screen("dev", _BASE)

    def test_bind_semantics(self):
        controller = AdmissionController(())
        with pytest.raises(ValueError, match="empty"):
            controller.bind(())
        controller.bind(_SIG)
        controller.bind(_SIG)  # idempotent
        with pytest.raises(ValueError, match="different signature"):
            controller.bind(_SIG[:4])

    def test_schema_check(self):
        controller = _seeded_controller()
        assert controller.screen("dev", _BASE[:4]) == ("schema",)
        bad = _BASE.copy()
        bad[2] = np.nan
        assert controller.screen("dev", bad) == ("schema",)

    def test_range_check_catches_unit_scale(self):
        controller = _seeded_controller()
        assert "range" in controller.screen("dev", _BASE * 1000.0)
        assert "range" in controller.screen("dev", _BASE / 1000.0)

    def test_duplicate_check_catches_replay(self):
        controller = _seeded_controller()
        assert "duplicate" in controller.screen("dev", np.full(len(_SIG), 42.0))

    def test_cold_start_admits_peer_free_clean_rows(self):
        controller = AdmissionController(_SIG)
        # Fewer than min_peers members: only peer-free checks run, so
        # even a grossly biased (but in-range) row screens clean.
        assert controller.screen("dev", _BASE * 40.0) == ()

    def test_speed_envelope_catches_gross_bias(self):
        controller = _seeded_controller()
        reasons = controller.screen("dev", _BASE * 40.0)
        assert reasons == ("speed",)
        # The same bias inside the honest envelope screens clean — by
        # design it is indistinguishable from a genuinely slower phone.
        assert controller.screen("dev", _BASE * 1.5) == ()

    def test_cross_prediction_catches_shape_corruption(self):
        controller = _seeded_controller()
        corrupted = _BASE.copy()
        corrupted[: len(_SIG) // 2] *= 20.0
        corrupted[len(_SIG) // 2 :] /= 20.0
        reasons = controller.screen("dev", corrupted)
        assert "cross" in reasons

    def test_honest_candidate_screens_clean(self):
        controller = _seeded_controller()
        rng = np.random.default_rng(99)
        candidate = _BASE * 1.2 * np.exp(rng.normal(0.0, 0.02, size=_BASE.size))
        assert controller.screen("dev", candidate) == ()

    def test_screen_is_pure(self):
        controller = _seeded_controller()
        bad = _BASE * 40.0
        assert controller.screen("dev", bad) == controller.screen("dev", bad)
        # Screening alone must not change reputation or profiles.
        assert "dev" not in controller.ledger.devices
        assert "dev" not in controller.accepted_devices

    def test_submit_updates_profiles_and_decisions(self):
        controller = _seeded_controller(n_members=6)
        decision = controller.submit("late", _BASE * 1.3)
        assert decision.admitted and decision.outcome == "accepted"
        assert controller.accepted_devices[-1] == "late"
        assert len(controller.decisions) == 7

    def test_rejected_profile_never_enters_peer_set(self):
        controller = _seeded_controller()
        controller.submit("liar", _BASE * 40.0)
        assert "liar" not in controller.accepted_devices

    def test_quarantine_probation_flow_with_telemetry(self):
        policy = AdmissionPolicy(quarantine_after=3, probation_successes=2)
        with telemetry.scoped_registry() as reg:
            controller = _seeded_controller(policy=policy)
            bad = _BASE * 2e6  # out of range every time
            outcomes = [controller.submit("liar", bad).outcome for _ in range(3)]
            assert outcomes == ["rejected", "rejected", "quarantined"]
            # Clean submissions now ride out probation.
            clean = _BASE * 1.4
            first = controller.submit("liar", clean)
            assert not first.admitted and first.reasons == ("probation",)
            second = controller.submit("liar", clean)
            assert second.admitted and second.outcome == "rehabilitated"
            assert reg.counter_value("admission.rejected") == 3
            assert reg.counter_value("admission.quarantined") == 1
            assert reg.counter_value("admission.rejected.range") == 3
            assert reg.counter_value("admission.rejected.probation") == 1
            assert reg.counter_value("admission.rehabilitated") == 1
        summary = controller.summary()
        assert summary["rehabilitated"] == 1
        assert summary["quarantined_devices"] == 0
        assert summary["reasons"]["range"] == 3

    def test_decisions_deterministic_across_fresh_controllers(self):
        submissions = [
            ("a", _BASE * 1.1),
            ("b", _BASE * 40.0),
            ("c", np.full(len(_SIG), 9.0)),
            ("d", _BASE * 0.9),
        ]

        def run():
            controller = _seeded_controller()
            return [controller.submit(name, row) for name, row in submissions]

        assert run() == run()

    def test_summary_counts_every_decision(self):
        controller = _seeded_controller(n_members=6)
        controller.submit("bad", _BASE * 1e4)
        summary = controller.summary()
        assert summary["accepted"] == 6
        assert summary["rejected"] == 1
        assert sum(summary["reasons"].values()) >= 1
