"""Tests for the network and hardware encoders."""

import numpy as np
import pytest

from repro.core.representation import (
    NetworkEncoder,
    SignatureHardwareEncoder,
    StaticHardwareEncoder,
    _LAYER_WIDTH,
)
from repro.devices.catalog import build_fleet
from repro.nnir.graph import Layer, Network
from repro.nnir.ops import Activation, Conv2d, TensorShape


def _chain(name, n_layers):
    layers = [Layer(Conv2d(3, 8, 3, 1, 1))]
    for _ in range(n_layers - 1):
        layers.append(Layer(Activation("relu"), (len(layers) - 1,)))
    return Network(name, TensorShape(3, 16, 16), layers)


class TestNetworkEncoder:
    def test_width_sized_by_longest(self):
        nets = [_chain("a", 2), _chain("b", 5)]
        encoder = NetworkEncoder(nets)
        assert encoder.max_layers == 5
        assert encoder.width == 5 * _LAYER_WIDTH

    def test_padding_is_zero(self):
        nets = [_chain("a", 2), _chain("b", 5)]
        encoder = NetworkEncoder(nets)
        vec = encoder.encode(nets[0])
        assert vec.shape == (encoder.width,)
        assert np.all(vec[2 * _LAYER_WIDTH :] == 0.0)
        assert np.any(vec[: 2 * _LAYER_WIDTH] != 0.0)

    def test_one_hot_block_is_valid(self):
        net = _chain("a", 3)
        encoder = NetworkEncoder([net])
        vec = encoder.encode(net)
        from repro.nnir.ops import OP_KINDS

        for i in range(3):
            block = vec[i * _LAYER_WIDTH : i * _LAYER_WIDTH + len(OP_KINDS)]
            assert block.sum() == 1.0
            assert set(np.unique(block)) <= {0.0, 1.0}

    def test_distinct_networks_encode_differently(self, small_suite):
        encoder = NetworkEncoder(list(small_suite))
        a = encoder.encode(small_suite["mobilenet_v2_1.0"])
        b = encoder.encode(small_suite["fbnet_c"])
        assert not np.array_equal(a, b)

    def test_too_deep_network_rejected(self):
        encoder = NetworkEncoder([_chain("a", 2)])
        with pytest.raises(ValueError, match="layers"):
            encoder.encode(_chain("deep", 3))

    def test_encode_all_stacks(self, small_suite):
        encoder = NetworkEncoder(list(small_suite))
        matrix = encoder.encode_all(list(small_suite)[:4])
        assert matrix.shape == (4, encoder.width)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            NetworkEncoder([])

    def test_encoding_deterministic(self, small_suite):
        encoder = NetworkEncoder(list(small_suite))
        net = small_suite["mnasnet_a1"]
        assert np.array_equal(encoder.encode(net), encoder.encode(net))


class TestStaticHardwareEncoder:
    def test_width_and_content(self):
        fleet = build_fleet(10, seed=0)
        encoder = StaticHardwareEncoder.from_devices(list(fleet))
        vec = encoder.encode(fleet[0])
        assert vec.shape == (encoder.width,)
        assert vec[: len(encoder.cpu_models)].sum() == 1.0
        assert vec[-2] == fleet[0].frequency_ghz
        assert vec[-1] == fleet[0].dram_gb

    def test_unknown_cpu_encodes_all_zero_onehot(self):
        fleet = build_fleet(10, seed=0)
        encoder = StaticHardwareEncoder(["SomeOtherCPU"])
        vec = encoder.encode(fleet[0])
        assert vec[0] == 0.0

    def test_vocabulary_deduplicated_and_sorted(self):
        encoder = StaticHardwareEncoder(["b", "a", "b"])
        assert encoder.cpu_models == ["a", "b"]

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            StaticHardwareEncoder([])


class TestSignatureHardwareEncoder:
    def test_encode_from_dataset(self, small_dataset):
        names = small_dataset.network_names[:3]
        encoder = SignatureHardwareEncoder(names)
        device = small_dataset.device_names[0]
        vec = encoder.encode_from_dataset(small_dataset, device)
        expected = [small_dataset.latency(device, n) for n in names]
        assert vec.tolist() == expected
        assert encoder.width == 3

    def test_encode_from_measurements(self):
        encoder = SignatureHardwareEncoder(["a", "b"])
        vec = encoder.encode_from_measurements({"b": 2.0, "a": 1.0, "c": 9.0})
        assert vec.tolist() == [1.0, 2.0]

    def test_missing_measurement_raises(self):
        encoder = SignatureHardwareEncoder(["a", "b"])
        with pytest.raises(ValueError, match="missing"):
            encoder.encode_from_measurements({"a": 1.0})

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SignatureHardwareEncoder(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SignatureHardwareEncoder([])


class TestIncrementalEncode:
    """encode_network: byte-identity with encode() and parent-row reuse."""

    def _mutated_pairs(self):
        """(parent, child) pairs covering depth, width and kernel moves."""
        from repro.search.space import (
            MUTATION_KINDS,
            EvolutionSpace,
            mutate,
            random_genotype,
        )

        space = EvolutionSpace()
        rng = np.random.default_rng(0)
        pairs = {}
        while set(pairs) != set(MUTATION_KINDS):
            parent = random_genotype(space, rng)
            child, kind = mutate(parent, space, rng)
            pairs.setdefault(
                kind,
                (
                    parent.to_network(space, "parent"),
                    child.to_network(space, "child"),
                ),
            )
        return pairs

    def test_encode_network_matches_encode(self):
        from repro.search.space import EvolutionSpace, random_genotype

        space = EvolutionSpace()
        rng = np.random.default_rng(1)
        nets = [
            random_genotype(space, rng).to_network(space, f"n{i}")
            for i in range(10)
        ]
        encoder = NetworkEncoder(nets)
        for net in nets:
            built = encoder.encode_network(net)
            assert built.flat.tobytes() == encoder.encode(net).tobytes()
            assert built.rows.shape == (net.n_layers, _LAYER_WIDTH)
            assert not built.flat.flags.writeable

    def test_incremental_equals_full_after_each_mutation_kind(self):
        pairs = self._mutated_pairs()
        nets = [n for pair in pairs.values() for n in pair]
        encoder = NetworkEncoder(nets)
        for kind, (parent, child) in pairs.items():
            base = encoder.encode_network(parent)
            incremental = encoder.encode_network(child, parent=base)
            full = encoder.encode_network(child)
            assert incremental.flat.tobytes() == full.flat.tobytes(), kind
            assert incremental.rows.tobytes() == full.rows.tobytes(), kind

    def test_incremental_actually_reuses_rows(self):
        from repro import telemetry

        pairs = self._mutated_pairs()
        nets = [n for pair in pairs.values() for n in pair]
        encoder = NetworkEncoder(nets)
        for kind, (parent, child) in pairs.items():
            base = encoder.encode_network(parent)
            with telemetry.scoped_registry() as reg:
                encoder.encode_network(child, parent=base)
                reused = reg.counter_value("encode.rows_reused")
                computed = reg.counter_value("encode.rows_computed")
            assert reused >= 2, kind  # at least the stem survives
            assert reused + computed == child.n_layers, kind

    def test_wrong_parent_never_corrupts(self):
        """Reuse keys on (op, input shapes): an unrelated 'parent' only
        donates rows that are genuinely identical."""
        from repro.search.space import EvolutionSpace, random_genotype

        space = EvolutionSpace()
        rng = np.random.default_rng(2)
        a = random_genotype(space, rng).to_network(space, "a")
        b = random_genotype(space, rng).to_network(space, "b")
        encoder = NetworkEncoder([a, b])
        with_wrong_parent = encoder.encode_network(
            b, parent=encoder.encode_network(a)
        )
        assert with_wrong_parent.flat.tobytes() == encoder.encode(b).tobytes()

    def test_too_deep_network_raises(self):
        nets = [_chain("short", 3)]
        encoder = NetworkEncoder(nets)
        with pytest.raises(ValueError, match="at most"):
            encoder.encode_network(_chain("long", 5))


class TestNetworkContentHash:
    def test_name_independent(self):
        from repro.core.representation import network_content_hash

        a = _chain("alpha", 4)
        b = _chain("beta", 4)
        assert network_content_hash(a) == network_content_hash(b)

    def test_structure_sensitive(self):
        from repro.core.representation import network_content_hash

        assert network_content_hash(_chain("a", 4)) != network_content_hash(
            _chain("a", 5)
        )
