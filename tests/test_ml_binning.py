"""Tests for repro.ml.binning (quantize-once feature binning).

The load-bearing contract is byte-identity: every shortcut here must
return bit-for-bit what ``fit_bin_edges`` would on the materialized
repeated/subsetted matrix, because the evaluation protocol's fast path
feeds the results straight into the GBT learner and the pipeline
promises unchanged predictions.
"""

import numpy as np
import pytest

from repro.ml.binning import (
    QuantizedFeatureBlock,
    apply_bin_edges,
    dedup_columns,
    fit_bin_edges,
    repeated_quantile_edges,
)


def _edges_equal(fast, ref):
    assert len(fast) == len(ref)
    for f, r in zip(fast, ref):
        assert f.shape == r.shape
        assert f.tobytes() == r.tobytes()


def _block_values(rng, n_rows, n_cols):
    """Feature-block-like data: few distinct values, duplicate and
    constant columns (no -0.0: sign-of-zero ties are value-equal but
    byte-distinct and never occur in real encodings)."""
    vals = rng.normal(size=(n_rows, n_cols))
    if n_cols > 3:
        vals[:, 1] = 7.0
        vals[:, 2] = vals[:, 0]
        vals[:, 3] = np.abs(np.round(vals[:, 3]))
    return vals


class TestRepeatedQuantileEdges:
    @pytest.mark.parametrize("repeats", [1, 2, 5, 24])
    @pytest.mark.parametrize("max_bins", [4, 64, 256])
    def test_matches_materialized_repeat(self, repeats, max_bins):
        rng = np.random.default_rng(0)
        vals = _block_values(rng, 17, 8)
        sorted_cols = np.sort(vals.T, axis=1)
        fast = repeated_quantile_edges(sorted_cols, repeats, max_bins)
        ref = fit_bin_edges(np.repeat(vals, repeats, axis=0), max_bins)
        _edges_equal(fast, ref)

    def test_single_row(self):
        vals = np.array([[3.0, -1.0]])
        fast = repeated_quantile_edges(np.sort(vals.T, axis=1), 4, 16)
        _edges_equal(fast, fit_bin_edges(np.repeat(vals, 4, axis=0), 16))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="repeats"):
            repeated_quantile_edges(np.ones((2, 3)), 0, 16)
        with pytest.raises(ValueError, match="2-D|\\(n_cols, m\\)"):
            repeated_quantile_edges(np.ones(3), 2, 16)
        with pytest.raises(ValueError, match="empty"):
            repeated_quantile_edges(np.ones((2, 0)), 2, 16)


class TestQuantizedFeatureBlock:
    @pytest.mark.parametrize("repeats", [1, 3, 11])
    def test_subset_edges_matches_fit(self, repeats):
        rng = np.random.default_rng(1)
        vals = _block_values(rng, 25, 9)
        block = QuantizedFeatureBlock(vals)
        mask = rng.random(25) > 0.4
        fast = block.subset_edges(mask, repeats, 64)
        ref = fit_bin_edges(np.repeat(vals[mask], repeats, axis=0), 64)
        _edges_equal(fast, ref)

    def test_weighted_edges_matches_fit(self):
        rng = np.random.default_rng(2)
        for trial in range(20):
            n_rows = int(rng.integers(1, 30))
            n_cols = int(rng.integers(1, 12))
            vals = _block_values(rng, n_rows, n_cols)
            counts = rng.integers(0, 5, size=n_rows)
            if counts.sum() == 0:
                counts[int(rng.integers(n_rows))] = 2
            max_bins = int(rng.choice([4, 16, 64, 256]))
            fast = QuantizedFeatureBlock(vals).weighted_edges(counts, max_bins)
            ref = fit_bin_edges(np.repeat(vals, counts, axis=0), max_bins)
            _edges_equal(fast, ref)

    def test_weighted_edges_equals_subset_edges_on_uniform_counts(self):
        rng = np.random.default_rng(3)
        vals = _block_values(rng, 20, 7)
        block = QuantizedFeatureBlock(vals)
        mask = rng.random(20) > 0.5
        _edges_equal(
            block.weighted_edges(mask.astype(np.int64) * 6, 32),
            block.subset_edges(mask, 6, 32),
        )

    def test_zero_count_rows_fully_excluded(self):
        # A huge outlier with count 0 must not influence any edge.
        vals = np.array([[1.0], [2.0], [3.0], [1e9]])
        counts = np.array([2, 2, 2, 0])
        fast = QuantizedFeatureBlock(vals).weighted_edges(counts, 16)
        ref = fit_bin_edges(np.repeat(vals, counts, axis=0), 16)
        _edges_equal(fast, ref)
        assert all(np.all(e < 4.0) for e in fast)

    def test_codes_match_apply(self):
        rng = np.random.default_rng(4)
        vals = _block_values(rng, 15, 6)
        block = QuantizedFeatureBlock(vals)
        edges = block.subset_edges(np.ones(15, dtype=bool), 2, 16)
        assert np.array_equal(block.codes(edges), apply_bin_edges(vals, edges))

    def test_rejects_bad_inputs(self):
        block = QuantizedFeatureBlock(np.ones((4, 2)))
        with pytest.raises(ValueError, match="one entry per block row"):
            block.subset_edges(np.ones(3, dtype=bool), 2, 16)
        with pytest.raises(ValueError, match="selects no rows"):
            block.subset_edges(np.zeros(4, dtype=bool), 2, 16)
        with pytest.raises(ValueError, match="one entry per block row"):
            block.weighted_edges(np.ones(3, dtype=np.int64), 16)
        with pytest.raises(ValueError, match="integer"):
            block.weighted_edges(np.ones(4), 16)
        with pytest.raises(ValueError, match=">= 0"):
            block.weighted_edges(np.array([1, -1, 0, 0]), 16)
        with pytest.raises(ValueError, match="select no rows"):
            block.weighted_edges(np.zeros(4, dtype=np.int64), 16)
        with pytest.raises(ValueError, match="at least one row"):
            QuantizedFeatureBlock(np.empty((0, 2)))
        with pytest.raises(ValueError, match="2-D|\\(n_items, n_cols\\)"):
            QuantizedFeatureBlock(np.ones(5))


class TestDedupColumns:
    def test_groups_identical_columns(self):
        codes = np.array(
            [[1, 2, 1, 3], [4, 5, 4, 6], [7, 8, 7, 9]], dtype=np.uint8
        )
        reps, inverse = dedup_columns(codes)
        assert reps.tolist() == [0, 1, 3]
        assert inverse.tolist() == [0, 1, 0, 2]
        assert np.array_equal(codes[:, reps][:, inverse], codes)

    def test_all_distinct(self):
        codes = np.arange(12, dtype=np.uint8).reshape(3, 4)
        reps, inverse = dedup_columns(codes)
        assert reps.tolist() == [0, 1, 2, 3]
        assert inverse.tolist() == [0, 1, 2, 3]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            dedup_columns(np.ones(4, dtype=np.uint8))
