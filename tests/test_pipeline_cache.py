"""Tests for artifact-cache correctness in repro.pipeline."""

import numpy as np

from repro.pipeline import build_paper_artifacts


class TestArtifactCache:
    def test_cache_file_created(self, tmp_path):
        build_paper_artifacts(seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        assert "seed3" in files[0].name

    def test_cache_keyed_by_parameters(self, tmp_path):
        build_paper_artifacts(seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path)
        build_paper_artifacts(seed=4, n_random_networks=2, n_devices=3, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_stale_cache_with_mismatched_names_is_rebuilt(self, tmp_path):
        art = build_paper_artifacts(
            seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path
        )
        # Corrupt the cache: overwrite with a dataset whose names differ.
        cache_file = next(tmp_path.glob("*.npz"))
        corrupted = art.dataset.select_devices([0, 1, 2])
        corrupted = type(art.dataset)(
            art.dataset.latencies_ms,
            [f"other_{n}" for n in art.dataset.device_names],
            art.dataset.network_names,
        )
        corrupted.save(cache_file)
        rebuilt = build_paper_artifacts(
            seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path
        )
        assert rebuilt.dataset.device_names == art.dataset.device_names
        assert np.array_equal(rebuilt.dataset.latencies_ms, art.dataset.latencies_ms)

    def test_seed_changes_everything(self):
        a = build_paper_artifacts(seed=1, n_random_networks=2, n_devices=3)
        b = build_paper_artifacts(seed=2, n_random_networks=2, n_devices=3)
        assert not np.array_equal(a.dataset.latencies_ms, b.dataset.latencies_ms)
