"""Tests for artifact-cache correctness in repro.pipeline."""

import numpy as np

from repro.cache import ArtifactCache
from repro.dataset.dataset import LatencyDataset
from repro.devices.measurement import MeasurementHarness
from repro.pipeline import build_paper_artifacts, campaign_config


class TestArtifactCache:
    def test_cache_file_created(self, tmp_path):
        build_paper_artifacts(seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        assert "seed3" in files[0].name

    def test_cache_keyed_by_parameters(self, tmp_path):
        build_paper_artifacts(seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path)
        build_paper_artifacts(seed=4, n_random_networks=2, n_devices=3, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_stale_cache_with_mismatched_names_is_rebuilt(self, tmp_path):
        art = build_paper_artifacts(
            seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path
        )
        # Corrupt the cache: overwrite with a dataset whose names differ.
        cache_file = next(tmp_path.glob("*.npz"))
        corrupted = art.dataset.select_devices([0, 1, 2])
        corrupted = type(art.dataset)(
            art.dataset.latencies_ms,
            [f"other_{n}" for n in art.dataset.device_names],
            art.dataset.network_names,
        )
        corrupted.save(cache_file)
        rebuilt = build_paper_artifacts(
            seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path
        )
        assert rebuilt.dataset.device_names == art.dataset.device_names
        assert np.array_equal(rebuilt.dataset.latencies_ms, art.dataset.latencies_ms)

    def test_stale_cache_file_is_rewritten_in_place(self, tmp_path):
        """A name-mismatched hit must be evicted and replaced, not left stale."""
        art = build_paper_artifacts(
            seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path
        )
        cache_file = next(tmp_path.glob("*.npz"))
        stale = LatencyDataset(
            art.dataset.latencies_ms,
            [f"other_{n}" for n in art.dataset.device_names],
            art.dataset.network_names,
        )
        stale.save(cache_file)
        build_paper_artifacts(seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path)
        on_disk = LatencyDataset.load(cache_file)
        assert on_disk.device_names == art.dataset.device_names
        assert np.array_equal(on_disk.latencies_ms, art.dataset.latencies_ms)

    def test_corrupt_cache_entry_recovers(self, tmp_path):
        art = build_paper_artifacts(
            seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path
        )
        cache_file = next(tmp_path.glob("*.npz"))
        cache_file.write_bytes(b"\x00garbage\x00")
        rebuilt = build_paper_artifacts(
            seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path
        )
        assert np.array_equal(rebuilt.dataset.latencies_ms, art.dataset.latencies_ms)
        assert np.array_equal(
            LatencyDataset.load(cache_file).latencies_ms, art.dataset.latencies_ms
        )

    def test_cache_keyed_by_harness_config(self, tmp_path):
        build_paper_artifacts(seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path)
        build_paper_artifacts(
            seed=3,
            n_random_networks=2,
            n_devices=3,
            cache_dir=tmp_path,
            harness=MeasurementHarness(runs=5, seed=3),
        )
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_use_cache_false_bypasses_cache(self, tmp_path):
        build_paper_artifacts(
            seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path, use_cache=False
        )
        assert list(tmp_path.iterdir()) == []

    def test_cache_metadata_records_summary(self, tmp_path):
        art = build_paper_artifacts(
            seed=3, n_random_networks=2, n_devices=3, cache_dir=tmp_path
        )
        harness = MeasurementHarness(seed=3)
        config = campaign_config(
            seed=3, n_random_networks=2, n_devices=3, harness=harness
        )
        meta = ArtifactCache(tmp_path).load_metadata(
            "latency_seed3_nets2_devs3", config
        )
        assert meta is not None
        assert meta["summary"]["n_points"] == art.dataset.n_points

    def test_seed_changes_everything(self):
        a = build_paper_artifacts(seed=1, n_random_networks=2, n_devices=3)
        b = build_paper_artifacts(seed=2, n_random_networks=2, n_devices=3)
        assert not np.array_equal(a.dataset.latencies_ms, b.dataset.latencies_ms)
