"""Tests for the Section-V collaborative characterization simulation."""

import numpy as np
import pytest

from repro.core.collaborative import (
    CollaborativeRepository,
    collaborative_r2_for_device,
    isolated_learning_curve,
    simulate_collaboration,
)
from repro.dataset.dataset import LatencyDataset
from repro.faults import AdversaryPlan, apply_adversary_plan
from repro.trust import AdmissionController, AdmissionPolicy


@pytest.fixture(scope="module")
def repo(small_dataset, small_suite):
    return CollaborativeRepository(
        small_dataset, small_suite, signature_size=4, selection_method="mis", seed=0
    )


class TestCollaborativeRepository:
    def test_signature_set_chosen(self, repo):
        assert len(repo.signature_names) == 4
        assert len(set(repo.signature_names)) == 4

    def test_join_contributes_fraction(self, repo, small_dataset):
        repo2 = CollaborativeRepository(
            small_dataset, repo.suite, signature_size=4, seed=1
        )
        repo2.join(small_dataset.device_names[0], contribution_fraction=0.2)
        contributed = repo2.contributions[small_dataset.device_names[0]]
        # The fraction is of *non-signature* networks, as documented.
        assert len(contributed) == round(0.2 * (small_dataset.n_networks - 4))
        assert not set(contributed) & set(repo2.signature_names)

    def test_double_join_rejected(self, small_dataset, small_suite):
        repo2 = CollaborativeRepository(small_dataset, small_suite, signature_size=3)
        repo2.join(small_dataset.device_names[0], 0.1)
        with pytest.raises(ValueError, match="already joined"):
            repo2.join(small_dataset.device_names[0], 0.1)

    def test_training_points_accounting(self, small_dataset, small_suite):
        repo2 = CollaborativeRepository(small_dataset, small_suite, signature_size=3)
        repo2.join_with_count(small_dataset.device_names[0], 5)
        repo2.join_with_count(small_dataset.device_names[1], 5)
        assert repo2.n_devices == 2
        assert repo2.n_training_points == 2 * (3 + 5)

    def test_train_before_join_raises(self, small_dataset, small_suite):
        repo2 = CollaborativeRepository(small_dataset, small_suite, signature_size=3)
        with pytest.raises(RuntimeError, match="no devices"):
            repo2.train()

    def test_train_and_evaluate(self, small_dataset, small_suite):
        repo2 = CollaborativeRepository(
            small_dataset, small_suite, signature_size=4, seed=2
        )
        for name in small_dataset.device_names[:10]:
            repo2.join(name, 0.3)
        model = repo2.train()
        score = repo2.evaluate_joined(model)
        assert 0.0 < score <= 1.0

    def test_invalid_fraction(self, small_dataset, small_suite):
        repo2 = CollaborativeRepository(small_dataset, small_suite, signature_size=3)
        with pytest.raises(ValueError):
            repo2.join(small_dataset.device_names[0], 1.5)

    def test_join_with_count_is_exact(self, small_dataset, small_suite):
        # Regression: join_with_count used to round-trip through a
        # float fraction, so some counts contributed count +/- 1.
        repo2 = CollaborativeRepository(
            small_dataset, small_suite, signature_size=4, seed=0
        )
        n_non_signature = small_dataset.n_networks - 4
        for device, count in zip(
            small_dataset.device_names, (0, 1, 7, n_non_signature)
        ):
            repo2.join_with_count(device, count)
            assert len(repo2.contributions[device]) == count

    def test_join_with_count_out_of_range(self, small_dataset, small_suite):
        repo2 = CollaborativeRepository(
            small_dataset, small_suite, signature_size=4, seed=0
        )
        with pytest.raises(ValueError, match="out of range"):
            repo2.join_with_count(
                small_dataset.device_names[0], small_dataset.n_networks - 3
            )
        with pytest.raises(ValueError, match="out of range"):
            repo2.join_with_count(small_dataset.device_names[0], -1)


class TestSimulateCollaboration:
    def test_records_grow_and_improve(self, small_dataset, small_suite):
        records = simulate_collaboration(
            small_dataset,
            small_suite,
            contribution_fraction=0.3,
            n_iterations=12,
            signature_size=4,
            seed=0,
            evaluate_every=4,
        )
        assert [r.n_devices for r in records] == [4, 8, 12]
        assert all(0.0 < r.avg_r2 <= 1.0 for r in records)
        assert records[-1].n_training_points > records[0].n_training_points
        # With a third of networks contributed per device, the late
        # model should be usefully accurate on the joined devices (the
        # session fixture is far smaller than the paper's dataset, so
        # the bar is lower than Figure 12's 0.9+).
        assert records[-1].avg_r2 > 0.6

    def test_iteration_bounds_validated(self, small_dataset, small_suite):
        with pytest.raises(ValueError):
            simulate_collaboration(small_dataset, small_suite, n_iterations=0)
        with pytest.raises(ValueError):
            simulate_collaboration(
                small_dataset, small_suite, n_iterations=small_dataset.n_devices + 1
            )

    def test_deterministic(self, small_dataset, small_suite):
        kwargs = dict(
            contribution_fraction=0.2, n_iterations=6, signature_size=3, seed=5,
            evaluate_every=6,
        )
        a = simulate_collaboration(small_dataset, small_suite, **kwargs)
        b = simulate_collaboration(small_dataset, small_suite, **kwargs)
        assert a[-1].avg_r2 == b[-1].avg_r2


class TestAdmissionGatedCollaboration:
    _KW = dict(
        contribution_fraction=0.3, n_iterations=12, signature_size=4,
        seed=0, evaluate_every=3,
    )

    @pytest.fixture(scope="class")
    def adversarial(self, small_dataset):
        # Pure unit-scale population: catchable by the peer-free range
        # check, so detection does not depend on fleet-size statistics.
        plan = AdversaryPlan(
            seed=7, fraction=0.25, unit_scale_weight=1.0, bias_weight=0.0,
            noise_weight=0.0, replay_weight=0.0, drift_weight=0.0,
        )
        corrupted = apply_adversary_plan(small_dataset, plan)
        assert corrupted is not small_dataset
        return corrupted

    def test_clean_run_byte_identical_with_admission(
        self, small_dataset, small_suite
    ):
        default = simulate_collaboration(small_dataset, small_suite, **self._KW)
        screened = simulate_collaboration(
            small_dataset, small_suite, admission=True, **self._KW
        )
        assert screened == default

    def test_honest_fleet_fully_admitted(self, small_dataset, small_suite):
        controller = AdmissionController(())
        simulate_collaboration(
            small_dataset, small_suite, admission=controller, **self._KW
        )
        summary = controller.summary()
        assert summary["accepted"] == self._KW["n_iterations"]
        assert summary["rejected"] == summary["quarantined"] == 0

    def test_admission_policy_and_bad_types(self, small_dataset, small_suite):
        records = simulate_collaboration(
            small_dataset, small_suite,
            admission=AdmissionPolicy(min_peers=3), **self._KW
        )
        assert records[-1].n_devices == self._KW["n_iterations"]
        with pytest.raises(TypeError, match="admission"):
            simulate_collaboration(
                small_dataset, small_suite, admission="yes", **self._KW
            )

    def test_eval_dataset_names_validated(self, small_dataset, small_suite):
        shrunk = small_dataset.select_devices(range(small_dataset.n_devices - 1))
        with pytest.raises(ValueError, match="same devices"):
            simulate_collaboration(
                small_dataset, small_suite, eval_dataset=shrunk, **self._KW
            )

    def test_admission_rejects_adversaries_and_recovers_r2(
        self, adversarial, small_dataset, small_suite
    ):
        unscreened = simulate_collaboration(
            adversarial, small_suite, eval_dataset=small_dataset, **self._KW
        )
        controller = AdmissionController(())
        screened = simulate_collaboration(
            adversarial, small_suite, admission=controller,
            eval_dataset=small_dataset, **self._KW
        )
        summary = controller.summary()
        assert summary["rejected"] + summary["quarantined"] >= 1
        rejected = {
            d.device_name for d in controller.decisions if not d.admitted
        }
        plan_adversaries = set(
            AdversaryPlan(
                seed=7, fraction=0.25, unit_scale_weight=1.0, bias_weight=0.0,
                noise_weight=0.0, replay_weight=0.0, drift_weight=0.0,
            ).adversary_devices(small_dataset.device_names)
        )
        assert rejected <= plan_adversaries  # zero honest false rejections
        # Screening keeps the repository accurate; the poisoned run
        # scores far worse on clean ground truth.
        assert screened[-1].avg_r2 > unscreened[-1].avg_r2 + 0.15
        assert screened[-1].avg_r2 > 0.5
        # The x-axis counts joined devices, so the screened run's last
        # checkpoint has fewer members than iterations.
        assert screened[-1].n_devices == self._KW["n_iterations"] - len(rejected)

    def test_admission_decisions_identical_across_backends(
        self, adversarial, small_dataset, small_suite
    ):
        from repro.parallel import BACKENDS, Executor

        runs = []
        for backend in BACKENDS:
            controller = AdmissionController(())
            records = simulate_collaboration(
                adversarial, small_suite, admission=controller,
                eval_dataset=small_dataset,
                executor=Executor(backend, 4), **self._KW
            )
            runs.append((records, list(controller.decisions)))
        for records, decisions in runs[1:]:
            assert records == runs[0][0]
            assert decisions == runs[0][1]


class TestIsolatedLearningCurve:
    def test_curve_improves_with_data(self, small_dataset, small_suite):
        device = small_dataset.device_names[0]
        curve = isolated_learning_curve(
            small_dataset, small_suite, device, train_sizes=[3, 30], seed=0
        )
        assert curve[0][0] == 3 and curve[1][0] == 30
        assert curve[1][1] > curve[0][1]
        assert curve[1][1] > 0.9  # trained on full suite, evaluated on it

    def test_invalid_sizes(self, small_dataset, small_suite):
        with pytest.raises(ValueError):
            isolated_learning_curve(
                small_dataset, small_suite, small_dataset.device_names[0],
                train_sizes=[0],
            )


class TestPartialDatasets:
    @pytest.fixture(scope="class")
    def partial(self, small_dataset):
        matrix = small_dataset.latencies_ms.copy()
        matrix[0, :] = np.nan  # quarantined device
        return LatencyDataset(
            matrix, small_dataset.device_names, small_dataset.network_names
        )

    def test_quarantined_device_cannot_join(self, partial, small_suite):
        repo = CollaborativeRepository(
            partial, small_suite, signature_size=4, seed=0
        )
        assert not repo.device_has_signature(partial.device_names[0])
        assert repo.device_has_signature(partial.device_names[1])
        with pytest.raises(ValueError, match="signature"):
            repo.join(partial.device_names[0], 0.2)

    def test_partial_device_contributes_only_measured(
        self, small_dataset, small_suite
    ):
        # "rs" selection ignores matrix values, so the signature is
        # stable under missing cells and we can carve a partial device
        # around it without circularity.
        probe = CollaborativeRepository(
            small_dataset, small_suite, signature_size=4,
            selection_method="rs", seed=0,
        )
        sig = set(probe.signature_names)
        non_sig_cols = [
            j for j, n in enumerate(small_dataset.network_names) if n not in sig
        ]
        matrix = small_dataset.latencies_ms.copy()
        for j in non_sig_cols[3:]:
            matrix[1, j] = np.nan
        partial = LatencyDataset(
            matrix, small_dataset.device_names, small_dataset.network_names
        )
        repo = CollaborativeRepository(
            partial, small_suite, signature_size=4, selection_method="rs", seed=0
        )
        assert repo.signature_names == probe.signature_names
        device = partial.device_names[1]
        repo.join(device, 1.0)  # asks for every non-signature network
        expected = {small_dataset.network_names[j] for j in non_sig_cols[:3]}
        assert set(repo.contributions[device]) == expected
        assert repo.completeness[device] < 1.0

    def test_simulation_skips_quarantined_devices(self, partial, small_suite):
        records = simulate_collaboration(
            partial, small_suite, contribution_fraction=0.3, n_iterations=4,
            signature_size=4, seed=0, evaluate_every=4,
        )
        assert records[-1].n_devices == 4
        assert 0.0 < records[-1].avg_r2 <= 1.0
        with pytest.raises(ValueError, match="complete"):
            simulate_collaboration(
                partial, small_suite, n_iterations=partial.n_devices,
                signature_size=4, seed=0,
            )


class TestCollaborativeForDevice:
    def test_target_device_r2_useful(self, small_dataset, small_suite):
        # The session fixture (24 devices x 30 nets) is much smaller
        # than the paper's dataset, so the bar is below Figure 13's
        # 0.98; the paper-scale bench asserts the real number.
        score = collaborative_r2_for_device(
            small_dataset,
            small_suite,
            small_dataset.device_names[3],
            n_contributors=16,
            extra_networks_per_device=10,
            signature_size=5,
            seed=0,
        )
        assert score > 0.6

    def test_unknown_target_device_rejected(self, small_dataset, small_suite):
        with pytest.raises(ValueError, match="unknown target device"):
            collaborative_r2_for_device(small_dataset, small_suite, "nope")

    def test_contributor_bounds_validated(self, small_dataset, small_suite):
        target = small_dataset.device_names[0]
        with pytest.raises(ValueError, match="n_contributors"):
            collaborative_r2_for_device(
                small_dataset, small_suite, target, n_contributors=0
            )
        with pytest.raises(ValueError, match="other"):
            collaborative_r2_for_device(
                small_dataset, small_suite, target,
                n_contributors=small_dataset.n_devices + 1,
            )

    def test_regressor_seed_changes_result(self, small_dataset, small_suite):
        kwargs = dict(
            n_contributors=8, extra_networks_per_device=5,
            signature_size=4, seed=0,
        )
        target = small_dataset.device_names[3]
        a = collaborative_r2_for_device(small_dataset, small_suite, target, **kwargs)
        b = collaborative_r2_for_device(
            small_dataset, small_suite, target, regressor_seed=7, **kwargs
        )
        assert a != b


class TestRegressorSeed:
    def test_threaded_through_simulation(self, small_dataset, small_suite):
        kwargs = dict(
            contribution_fraction=0.3, n_iterations=4, signature_size=4,
            seed=0, evaluate_every=4,
        )
        a = simulate_collaboration(small_dataset, small_suite, **kwargs)
        b = simulate_collaboration(
            small_dataset, small_suite, regressor_seed=7, **kwargs
        )
        # Same membership and contributions, different model fit.
        assert a[-1].n_devices == b[-1].n_devices
        assert a[-1].n_training_points == b[-1].n_training_points
        assert a[-1].avg_r2 != b[-1].avg_r2


class TestQuantizedCheckpointParity:
    """The quantize-once checkpoint path must replay the seed
    simulation byte-for-byte (default mode), and the warm-start mode
    must degrade to exact full refits at its refresh points."""

    _KW = dict(
        contribution_fraction=0.3, n_iterations=12, signature_size=4,
        seed=0, evaluate_every=3,
    )

    def test_default_matches_seed_simulation(self, small_dataset, small_suite):
        from benchmarks.legacy_train import legacy_simulate_collaboration

        records = simulate_collaboration(
            small_dataset, small_suite, backend="serial", **self._KW
        )
        ref = legacy_simulate_collaboration(small_dataset, small_suite, **self._KW)
        assert [
            (r.n_devices, r.avg_r2, r.n_training_points) for r in records
        ] == ref

    def test_incremental_prefix_matches_default(self, small_dataset, small_suite):
        from repro import telemetry

        default = simulate_collaboration(
            small_dataset, small_suite, backend="serial", **self._KW
        )
        with telemetry.scoped_registry() as reg:
            inc = simulate_collaboration(
                small_dataset, small_suite, incremental=True,
                incremental_min_devices=6, **self._KW
            )
            warm_steps = reg.counter_value("collab.warm_start_steps")
        assert [r.n_devices for r in inc] == [r.n_devices for r in default]
        # Checkpoints up to and including the first warm-eligible one
        # are full refits — byte-equal to the default mode.
        for d, i in zip(default, inc):
            if d.n_devices <= 6:
                assert i == d
        assert warm_steps > 0

    def test_refresh_factor_one_degrades_to_default(
        self, small_dataset, small_suite
    ):
        default = simulate_collaboration(
            small_dataset, small_suite, backend="serial", **self._KW
        )
        inc = simulate_collaboration(
            small_dataset, small_suite, incremental=True,
            incremental_min_devices=1, incremental_refresh_factor=1.0, **self._KW
        )
        # Every checkpoint is "stale" under factor 1.0, so the
        # incremental mode performs only full refits.
        assert inc == default

    def test_incremental_is_deterministic(self, small_dataset, small_suite):
        kwargs = dict(
            incremental=True, incremental_min_devices=3, incremental_trees=5,
            **self._KW,
        )
        a = simulate_collaboration(small_dataset, small_suite, **kwargs)
        b = simulate_collaboration(small_dataset, small_suite, **kwargs)
        assert a == b

    def test_incremental_params_validated(self, small_dataset, small_suite):
        with pytest.raises(ValueError, match="incremental_trees"):
            simulate_collaboration(
                small_dataset, small_suite, incremental=True,
                incremental_trees=0, **self._KW
            )
        with pytest.raises(ValueError, match="incremental_refresh_factor"):
            simulate_collaboration(
                small_dataset, small_suite, incremental=True,
                incremental_refresh_factor=0.5, **self._KW
            )
