"""Additional protocol-level tests for evaluation correctness.

These guard the subtle protocol rules the paper specifies: signature
selection must only see training devices, and signature networks'
latencies must be excluded from the regression targets.
"""

import numpy as np
import pytest

from repro.core.evaluation import device_split_evaluation
from repro.dataset.dataset import LatencyDataset


class TestProtocolIsolation:
    def test_selection_ignores_test_devices(self, small_suite, small_dataset):
        """Corrupting *test-device* rows must not change the selected
        signature set (selection sees training rows only)."""
        base = device_split_evaluation(
            small_dataset, small_suite, signature_size=4, method="sccs",
            split_seed=3, selection_rng=0,
        )
        test_rows = [small_dataset.device_index(d) for d in base.test_devices]
        corrupted_matrix = small_dataset.latencies_ms.copy()
        rng = np.random.default_rng(0)
        corrupted_matrix[test_rows, :] *= rng.uniform(0.5, 2.0, size=(len(test_rows), 1))
        corrupted = LatencyDataset(
            corrupted_matrix, small_dataset.device_names, small_dataset.network_names
        )
        again = device_split_evaluation(
            corrupted, small_suite, signature_size=4, method="sccs",
            split_seed=3, selection_rng=0,
        )
        assert again.signature_names == base.signature_names

    def test_signature_targets_excluded(self, small_suite, small_dataset):
        result = device_split_evaluation(
            small_dataset, small_suite, signature_size=5, method="rs",
            split_seed=2, selection_rng=1,
        )
        per_device = result.y_true.size / len(result.test_devices)
        assert per_device == small_dataset.n_networks - 5

    def test_test_targets_match_dataset_values(self, small_suite, small_dataset):
        result = device_split_evaluation(
            small_dataset, small_suite, signature_size=3, method="rs",
            split_seed=2, selection_rng=1,
        )
        targets = [
            n for n in small_dataset.network_names
            if n not in result.signature_names
        ]
        expected = np.concatenate(
            [
                [small_dataset.latency(d, n) for n in targets]
                for d in result.test_devices
            ]
        )
        assert np.allclose(result.y_true, expected)

    def test_rmse_consistent_with_predictions(self, small_suite, small_dataset):
        result = device_split_evaluation(
            small_dataset, small_suite, signature_size=3, method="mis",
            split_seed=1, selection_rng=0,
        )
        manual = float(np.sqrt(np.mean((result.y_true - result.y_pred) ** 2)))
        assert result.rmse_ms == pytest.approx(manual)

    def test_signature_size_one_works(self, small_suite, small_dataset):
        result = device_split_evaluation(
            small_dataset, small_suite, signature_size=1, method="rs",
            split_seed=0, selection_rng=0,
        )
        assert len(result.signature_names) == 1
        assert result.r2 > 0.0
