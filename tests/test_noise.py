"""Tests for the vectorized noise-state tables (repro.devices.noise):
bit-exact equivalence with NumPy's SeedSequence/PCG64 seeding, restored
generators matching fresh ones byte-for-byte, the state-table memo, and
the tile measurement path matching the per-device row path."""

import hashlib

import numpy as np
import pytest

from repro.devices import noise
from repro.devices.catalog import build_fleet
from repro.devices.latency import compile_fleet, compile_works
from repro.devices.measurement import MeasurementHarness
from repro.generator.suite import BenchmarkSuite


def _fresh_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestStateTable:
    @pytest.mark.parametrize(
        "seed",
        [0, 1, 42, 2**32 - 1, 2**32, 2**63, 2**64 - 1, 0x9E3779B97F4A7C15],
    )
    def test_matches_pcg64_seeding_exactly(self, seed):
        limbs = noise.pcg64_state_table(np.array([seed], dtype=np.uint64))[0]
        expected = np.random.PCG64(seed).state["state"]
        assert (int(limbs[0]) << 64) | int(limbs[1]) == expected["state"]
        assert (int(limbs[2]) << 64) | int(limbs[3]) == expected["inc"]

    def test_grid_shape_is_preserved(self):
        seeds = np.arange(12, dtype=np.uint64).reshape(3, 4)
        table = noise.pcg64_state_table(seeds)
        assert table.shape == (3, 4, noise.STATE_WORDS)

    def test_cell_seeds_match_harness_derivation(self):
        harness = MeasurementHarness(seed=7)
        devices, networks = ["dev-a", "dev-b"], ["net-1", "net-2", "net-3"]
        grid = noise.cell_seeds(7, devices, networks)
        for i, device in enumerate(devices):
            for j, network in enumerate(networks):
                digest = hashlib.sha256(f"7|{device}|{network}".encode()).digest()
                assert grid[i, j] == int.from_bytes(digest[:8], "little")
                # And the derived state drives the same stream as the
                # harness's own generator.
                restored = noise.restorer().restore(
                    noise.pcg64_state_table(grid[i : i + 1, j])[0]
                )
                fresh = harness._rng_for(device, network)
                assert restored.random(4).tobytes() == fresh.random(4).tobytes()


class TestRestorer:
    def test_draws_byte_identical_to_fresh_generator(self):
        seeds = np.array([0, 3, 123456789], dtype=np.uint64)
        table = noise.pcg64_state_table(seeds)
        restore = noise.restorer()
        for seed, limbs in zip(seeds.tolist(), table.tolist()):
            rng = restore.restore(limbs)
            fresh = _fresh_rng(int(seed))
            assert (
                rng.lognormal(0.0, 0.05, size=30).tobytes()
                == fresh.lognormal(0.0, 0.05, size=30).tobytes()
            )
            assert rng.random(30).tobytes() == fresh.random(30).tobytes()

    def test_reuse_does_not_contaminate_streams(self):
        table = noise.pcg64_state_table(np.array([11, 22], dtype=np.uint64))
        restore = noise.restorer()
        restore.restore(table[0]).random(17)  # advance stream A mid-draw
        rng_b = restore.restore(table[1])
        assert rng_b.random(8).tobytes() == _fresh_rng(22).random(8).tobytes()

    def test_accepts_numpy_rows_and_python_ints(self):
        table = noise.pcg64_state_table(np.array([5], dtype=np.uint64))
        restore = noise.restorer()
        from_numpy = restore.restore(table[0]).random(4)
        from_ints = restore.restore(table[0].tolist()).random(4)
        assert from_numpy.tobytes() == from_ints.tobytes()


class TestStateTableMemo:
    def test_hit_returns_same_read_only_table(self):
        devices, networks = ("d1", "d2"), ("n1", "n2", "n3")
        first = noise.state_table_cached(0, devices, networks)
        second = noise.state_table_cached(0, devices, networks)
        assert first is second
        assert not first.flags.writeable
        np.testing.assert_array_equal(
            first, noise.pcg64_state_table(noise.cell_seeds(0, devices, networks))
        )

    def test_distinct_configurations_get_distinct_tables(self):
        base = noise.state_table_cached(0, ("d",), ("n",))
        assert noise.state_table_cached(1, ("d",), ("n",)) is not base
        assert noise.state_table_cached(0, ("d2",), ("n",)) is not base

    def test_memo_is_bounded(self):
        for i in range(noise._TABLE_MEMO_MAX + 3):
            noise.state_table_cached(1000 + i, ("d",), ("n",))
        assert len(noise._TABLE_MEMO) <= noise._TABLE_MEMO_MAX


class TestTilePath:
    def _setup(self):
        suite = BenchmarkSuite.default(n_random=2, seed=0)
        fleet = build_fleet(5, seed=0)
        names = list(suite.names)
        compiled = compile_works([suite.work(name) for name in names])
        return suite, fleet, names, compiled

    def test_tile_rows_byte_identical_to_row_path(self):
        _, fleet, names, compiled = self._setup()
        harness = MeasurementHarness(seed=0)
        devices = list(fleet)
        grid = compile_fleet(devices)
        tile = harness.measure_tile_ms(grid, compiled, names)
        rows = np.stack(
            [harness.measure_row_ms(device, compiled, names) for device in devices]
        )
        assert tile.tobytes() == rows.tobytes()

    def test_tile_blocking_never_changes_values(self):
        _, fleet, names, compiled = self._setup()
        harness = MeasurementHarness(seed=0)
        devices = list(fleet)
        whole = harness.measure_tile_ms(compile_fleet(devices), compiled, names)
        pieces = [
            harness.measure_tile_ms(compile_fleet(devices[i : i + 2]), compiled, names)
            for i in range(0, len(devices), 2)
        ]
        assert np.concatenate(pieces, axis=0).tobytes() == whole.tobytes()

    def test_precomputed_state_table_matches_default(self):
        _, fleet, names, compiled = self._setup()
        harness = MeasurementHarness(seed=0)
        grid = compile_fleet(list(fleet))
        table = noise.pcg64_state_table(noise.cell_seeds(0, grid.names, names))
        explicit = harness.measure_tile_ms(grid, compiled, names, state_table=table)
        default = harness.measure_tile_ms(grid, compiled, names)
        assert explicit.tobytes() == default.tobytes()

    def test_mismatched_state_table_raises(self):
        _, fleet, names, compiled = self._setup()
        harness = MeasurementHarness(seed=0)
        grid = compile_fleet(list(fleet))
        bad = np.zeros((1, 1, noise.STATE_WORDS), dtype=np.uint64)
        with pytest.raises(ValueError, match="state table shape"):
            harness.measure_tile_ms(grid, compiled, names, state_table=bad)

    def test_row_path_tracks_scalar_protocol(self):
        _, fleet, names, compiled = self._setup()
        suite = BenchmarkSuite.default(n_random=2, seed=0)
        harness = MeasurementHarness(seed=0)
        device = list(fleet)[0]
        row = harness.measure_row_ms(device, compiled, names)
        scalar = np.array(
            [harness.measure_ms(device, suite.work(name), name) for name in names]
        )
        np.testing.assert_allclose(row, scalar, rtol=1e-9)

    def test_robust_aggregate_tile_matches_rows(self):
        _, fleet, names, compiled = self._setup()
        harness = MeasurementHarness(seed=0, aggregate="median")
        devices = list(fleet)[:3]
        tile = harness.measure_tile_ms(compile_fleet(devices), compiled, names)
        rows = np.stack(
            [harness.measure_row_ms(device, compiled, names) for device in devices]
        )
        assert tile.tobytes() == rows.tobytes()
