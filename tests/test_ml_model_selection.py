"""Tests for repro.ml.model_selection."""

import numpy as np
import pytest

from repro.ml.model_selection import KFold, train_test_split


class TestTrainTestSplit:
    def test_partition_is_exact(self):
        train, test = train_test_split(100, 0.3, rng=0)
        combined = np.sort(np.concatenate([train, test]))
        assert np.array_equal(combined, np.arange(100))

    def test_sizes(self):
        train, test = train_test_split(100, 0.3, rng=0)
        assert test.size == 30
        assert train.size == 70

    def test_deterministic_for_seed(self):
        a = train_test_split(50, 0.2, rng=7)
        b = train_test_split(50, 0.2, rng=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = train_test_split(50, 0.2, rng=7)
        b = train_test_split(50, 0.2, rng=8)
        assert not np.array_equal(a[1], b[1])

    def test_always_at_least_one_each_side(self):
        train, test = train_test_split(2, 0.01, rng=0)
        assert train.size == 1 and test.size == 1

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_split(10, 0.0)
        with pytest.raises(ValueError):
            train_test_split(10, 1.0)

    def test_too_few_items_raises(self):
        with pytest.raises(ValueError):
            train_test_split(1, 0.5)


class TestKFold:
    def test_folds_cover_everything_once(self):
        kf = KFold(n_splits=4, seed=0)
        seen = []
        for train, test in kf.split(22):
            seen.extend(test.tolist())
            assert np.intersect1d(train, test).size == 0
            assert train.size + test.size == 22
        assert sorted(seen) == list(range(22))

    def test_number_of_folds(self):
        assert len(list(KFold(n_splits=5).split(25))) == 5

    def test_no_shuffle_is_contiguous(self):
        folds = list(KFold(n_splits=2, shuffle=False).split(4))
        assert folds[0][1].tolist() == [0, 1]
        assert folds[1][1].tolist() == [2, 3]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))
