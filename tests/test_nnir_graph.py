"""Tests for the network graph: validation, shape inference, walking."""

import pytest

from repro.nnir.graph import Layer, Network
from repro.nnir.ops import (
    Activation,
    Add,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    InvertedBottleneck,
    Linear,
    TensorShape,
)


def _tiny_net():
    layers = [
        Layer(Conv2d(3, 16, 3, 2, 1)),
        Layer(Activation("relu"), (0,)),
        Layer(InvertedBottleneck(16, 16, 3), (1,)),
        Layer(GlobalAvgPool(), (2,)),
        Layer(Flatten(), (3,)),
        Layer(Linear(16, 10), (4,)),
    ]
    return Network("tiny", TensorShape(3, 32, 32), layers)


class TestNetworkConstruction:
    def test_valid_network(self):
        net = _tiny_net()
        assert net.n_layers == 6
        assert net.output_shape == TensorShape(10)

    def test_layer_shapes_in_order(self):
        net = _tiny_net()
        shapes = net.layer_shapes()
        assert shapes[0] == TensorShape(16, 16, 16)
        assert shapes[3] == TensorShape(16, 1, 1)

    def test_walk_yields_consistent_triples(self):
        net = _tiny_net()
        for layer, in_shapes, out_shape in net.walk():
            assert layer.op.out_shape(in_shapes) == out_shape

    def test_skip_connection_inputs(self):
        layers = [
            Layer(Conv2d(3, 8, 3, 1, 1)),
            Layer(Conv2d(8, 8, 3, 1, 1), (0,)),
            Layer(Add(), (0, 1)),
        ]
        net = Network("skip", TensorShape(3, 8, 8), layers)
        assert net.output_shape == TensorShape(8, 8, 8)
        assert net.layer_inputs(2) == (TensorShape(8, 8, 8), TensorShape(8, 8, 8))

    def test_forward_reference_rejected(self):
        layers = [
            Layer(Conv2d(3, 8, 3, 1, 1), (1,)),  # refers to a later layer
            Layer(Activation("relu"), (0,)),
        ]
        with pytest.raises(ValueError, match="invalid input"):
            Network("bad", TensorShape(3, 8, 8), layers)

    def test_self_reference_rejected(self):
        layers = [Layer(Conv2d(3, 8, 3, 1, 1), (0,))]
        with pytest.raises(ValueError, match="invalid input"):
            Network("bad", TensorShape(3, 8, 8), layers)

    def test_shape_error_names_layer(self):
        layers = [
            Layer(Conv2d(3, 8, 3, 1, 1)),
            Layer(Conv2d(16, 8, 3, 1, 1), (0,)),  # channel mismatch
        ]
        with pytest.raises(ValueError, match="layer 1"):
            Network("bad", TensorShape(3, 8, 8), layers)

    def test_arity_mismatch_rejected_at_layer(self):
        with pytest.raises(ValueError, match="expects 2 inputs"):
            Layer(Add(), (0,))

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError, match="at least one layer"):
            Network("empty", TensorShape(3, 8, 8), [])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Network("", TensorShape(3, 8, 8), [Layer(Activation("relu"))])

    def test_repr_mentions_name_and_depth(self):
        text = repr(_tiny_net())
        assert "tiny" in text and "6 layers" in text
