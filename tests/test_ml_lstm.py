"""Tests for the LSTM-encoder regression baseline."""

import numpy as np
import pytest

from repro.ml.lstm import LSTMRegressor
from repro.ml.metrics import r2_score


def _sequence_task(n=400, t=8, d=3, seed=0):
    """Target: masked sum of the first feature + linear aux term."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, t, d))
    lengths = rng.integers(2, t + 1, size=n)
    mask = (np.arange(t)[None, :] < lengths[:, None]).astype(float)
    aux = rng.normal(size=(n, 2))
    y = (X[:, :, 0] * mask).sum(axis=1) + 2.0 * aux[:, 0]
    return X, mask, aux, y


class TestLSTMRegressor:
    def test_learns_sequence_dependence(self):
        X, mask, aux, y = _sequence_task()
        model = LSTMRegressor(hidden_size=24, epochs=40, seed=0)
        model.fit(X, mask, aux, y)
        assert r2_score(y, model.predict(X, mask, aux)) > 0.8

    def test_uses_aux_features(self):
        rng = np.random.default_rng(1)
        X = np.zeros((300, 4, 2))
        mask = np.ones((300, 4))
        aux = rng.normal(size=(300, 1))
        y = 3.0 * aux[:, 0]
        model = LSTMRegressor(hidden_size=8, epochs=60, batch_size=32, seed=0)
        model.fit(X, mask, aux, y)
        assert r2_score(y, model.predict(X, mask, aux)) > 0.95

    def test_mask_freezes_state(self):
        """Padded timesteps must not change the prediction."""
        X, mask, aux, y = _sequence_task(n=100, t=6)
        model = LSTMRegressor(hidden_size=8, epochs=5, seed=0)
        model.fit(X, mask, aux, y)
        base = model.predict(X, mask, aux)
        # Corrupt padded positions only.
        X2 = X.copy()
        X2[mask == 0] = 99.0
        assert np.allclose(model.predict(X2, mask, aux), base)

    def test_loss_decreases(self):
        X, mask, aux, y = _sequence_task(n=200)
        model = LSTMRegressor(hidden_size=12, epochs=15, seed=0).fit(X, mask, aux, y)
        assert model.train_loss_[-1] < model.train_loss_[0]

    def test_deterministic(self):
        X, mask, aux, y = _sequence_task(n=120)
        a = LSTMRegressor(hidden_size=8, epochs=5, seed=3).fit(X, mask, aux, y)
        b = LSTMRegressor(hidden_size=8, epochs=5, seed=3).fit(X, mask, aux, y)
        assert np.allclose(a.predict(X, mask, aux), b.predict(X, mask, aux))

    def test_output_scale_restored(self):
        X, mask, aux, y = _sequence_task(n=200)
        y = y * 100 + 5000
        model = LSTMRegressor(hidden_size=12, epochs=20, seed=0).fit(X, mask, aux, y)
        assert abs(model.predict(X, mask, aux).mean() - y.mean()) < 0.2 * y.std()

    def test_shape_validation(self):
        model = LSTMRegressor()
        with pytest.raises(ValueError, match="batch, time, features"):
            model.fit(np.ones((2, 3)), np.ones((2, 3)), np.ones((2, 1)), np.ones(2))
        with pytest.raises(ValueError, match="mask"):
            model.fit(np.ones((2, 3, 1)), np.ones((2, 2)), np.ones((2, 1)), np.ones(2))
        with pytest.raises(ValueError, match="align"):
            model.fit(np.ones((2, 3, 1)), np.ones((2, 3)), np.ones((3, 1)), np.ones(2))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LSTMRegressor().predict(np.ones((1, 2, 3)), np.ones((1, 2)), np.ones((1, 1)))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            LSTMRegressor(hidden_size=0)
        with pytest.raises(ValueError):
            LSTMRegressor(epochs=0)


class TestSequenceEncoding:
    def test_encoder_sequence_matches_flat(self, small_suite):
        from repro.core.representation import NetworkEncoder

        encoder = NetworkEncoder(list(small_suite))
        net = small_suite["mobilenet_v2_1.0"]
        seq, mask = encoder.encode_sequence(net)
        assert seq.shape[0] == encoder.max_layers
        assert mask.sum() == net.n_layers
        assert np.array_equal(seq.ravel(), encoder.encode(net))

    def test_batched_sequences(self, small_suite):
        from repro.core.representation import NetworkEncoder

        encoder = NetworkEncoder(list(small_suite))
        nets = list(small_suite)[:5]
        seqs, masks = encoder.encode_sequences(nets)
        assert seqs.shape[0] == 5 and masks.shape[0] == 5
