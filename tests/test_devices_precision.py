"""Tests for the int8/fp32 precision dimension of the latency model."""

import numpy as np
import pytest

from repro.devices.catalog import CORE_FAMILIES, build_fleet
from repro.devices.device import Device
from repro.devices.latency import LatencyModel
from repro.generator.zoo import ZOO_BUILDERS


def _device(core_name="Kryo 485 Gold", **overrides):
    base = dict(
        name="d", chipset="SoC", frequency_ghz=2.0, dram_gb=4,
        core=CORE_FAMILIES[core_name], dram_bw_gbps=10.0,
    )
    base.update(overrides)
    return Device(**base)


class TestPrecision:
    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            LatencyModel(precision="int4")

    def test_int8_always_faster(self):
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        int8, fp32 = LatencyModel(), LatencyModel(precision="fp32")
        for device in build_fleet(10, seed=1):
            assert int8.network_latency_ms(device, net) < fp32.network_latency_ms(
                device, net
            )

    def test_dotprod_core_gains_more_from_quantization(self):
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        int8, fp32 = LatencyModel(), LatencyModel(precision="fp32")

        def speedup(core):
            d = _device(core)
            return fp32.network_latency_ms(d, net) / int8.network_latency_ms(d, net)

        assert speedup("Cortex-A76") > speedup("Cortex-A53") + 0.3

    def test_fp32_peak_is_four_macs_per_pipe(self):
        core = CORE_FAMILIES["Cortex-A76"]
        assert core.peak_fp32_macs_per_cycle == 4.0 * core.simd_pipes
        assert core.elementwise_lanes_fp32 == 4.0 * core.simd_pipes

    def test_fp32_quadruples_memory_traffic(self):
        assert LatencyModel()._bytes_per_element == 1
        assert LatencyModel(precision="fp32")._bytes_per_element == 4

    def test_speedup_in_published_band(self):
        """TFLite int8 is typically 1.5-3x faster than fp32 on CPUs."""
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        int8, fp32 = LatencyModel(), LatencyModel(precision="fp32")
        speedups = [
            fp32.network_latency_ms(d, net) / int8.network_latency_ms(d, net)
            for d in build_fleet(30, seed=2)
        ]
        assert 1.2 < np.median(speedups) < 3.5
        assert max(speedups) < 4.5
