"""Tests for the mobile GPU delegate extension."""

import numpy as np
import pytest

from repro.devices.catalog import CHIPSETS, build_fleet
from repro.devices.gpu import (
    GPU_BY_CHIPSET,
    GpuLatencyModel,
    GpuSpec,
    collect_gpu_dataset,
)
from repro.devices.latency import LatencyModel
from repro.generator.zoo import ZOO_BUILDERS


class TestGpuCatalog:
    def test_every_chipset_has_a_gpu(self):
        for chipset in CHIPSETS:
            assert chipset.name in GPU_BY_CHIPSET

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GpuSpec("bad", -1, 10, 0.5)
        with pytest.raises(ValueError):
            GpuSpec("bad", 10, 10, 0.0)

    def test_flagship_gpus_faster_than_budget(self):
        assert (
            GPU_BY_CHIPSET["Snapdragon 865"].peak_gmacs_int8
            > 5 * GPU_BY_CHIPSET["Snapdragon 450"].peak_gmacs_int8
        )


class TestGpuLatencyModel:
    def test_latency_positive(self):
        model = GpuLatencyModel()
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        for device in build_fleet(10, seed=0):
            assert model.network_latency_ms(device, net) > 0

    def test_unmapped_chipset_raises(self):
        from repro.devices.catalog import CORE_FAMILIES
        from repro.devices.device import Device

        device = Device(
            name="x", chipset="Unknown SoC", frequency_ghz=2.0, dram_gb=4,
            core=CORE_FAMILIES["Cortex-A53"], dram_bw_gbps=5.0,
        )
        with pytest.raises(KeyError, match="no GPU mapping"):
            GpuLatencyModel().network_latency_ms(
                device, ZOO_BUILDERS["mobilenet_v3_small"]()
            )

    def test_flagship_gpu_beats_its_cpu(self):
        """On big-GPU SoCs the delegate outruns the single CPU core."""
        fleet = build_fleet(105, seed=0)
        flagship = next(d for d in fleet if d.chipset == "Snapdragon 865")
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        cpu_ms = LatencyModel().network_latency_ms(flagship, net)
        gpu_ms = GpuLatencyModel().network_latency_ms(flagship, net)
        assert gpu_ms < cpu_ms

    def test_dispatch_overhead_dominates_tiny_networks(self):
        """GPU advantage shrinks (or reverses) for small networks on
        budget SoCs — the paper's observed 'unexpected outcomes' with
        GPU delegates."""
        fleet = build_fleet(105, seed=0)
        budget = next(d for d in fleet if d.chipset == "Snapdragon 425")
        small = ZOO_BUILDERS["mobilenet_v3_small"]()
        big = ZOO_BUILDERS["mobilenet_v2_1.4"]()
        cpu, gpu = LatencyModel(), GpuLatencyModel()
        ratio_small = gpu.network_latency_ms(budget, small) / cpu.network_latency_ms(
            budget, small
        )
        ratio_big = gpu.network_latency_ms(budget, big) / cpu.network_latency_ms(
            budget, big
        )
        assert ratio_small > ratio_big

    def test_depthwise_utilizes_gpu_poorly(self):
        """Per unit of MACs, a depthwise kernel should be much further
        from GPU peak than a pointwise kernel (low occupancy)."""
        from repro.devices.catalog import CORE_FAMILIES
        from repro.devices.device import Device
        from repro.nnir.ops import ComputeKind, PrimitiveWork

        device = Device(
            name="x", chipset="Snapdragon 845", frequency_ghz=2.8, dram_gb=6,
            core=CORE_FAMILIES["Kryo 385 Gold"], dram_bw_gbps=10.0,
        )
        gpu = GpuLatencyModel()
        macs = 50_000_000
        # Compute-bound shapes: tiny traffic relative to MACs.
        pw = PrimitiveWork(ComputeKind.CONV_PW, macs, 1000, 1000, 1000)
        dw = PrimitiveWork(ComputeKind.CONV_DW, macs, 1000, 1000, 1000)
        assert gpu.primitive_seconds(device, dw) > 3 * gpu.primitive_seconds(device, pw)


class TestGpuDataset:
    def test_collect_gpu_dataset(self, small_suite, small_fleet):
        ds = collect_gpu_dataset(small_suite, small_fleet, seed=0)
        assert ds.n_devices == len(small_fleet)
        assert ds.n_networks == len(small_suite)
        assert (ds.latencies_ms > 0).all()

    def test_gpu_dataset_differs_from_cpu(self, small_suite, small_fleet, small_dataset):
        gpu_ds = collect_gpu_dataset(small_suite, small_fleet, seed=0)
        assert not np.allclose(gpu_ds.latencies_ms, small_dataset.latencies_ms)
