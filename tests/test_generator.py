"""Tests for the search space, random generator, zoo and suite."""

import numpy as np
import pytest

from repro.generator.random_gen import RandomNetworkGenerator, _scale_channels
from repro.generator.search_space import MOBILE_SEARCH_SPACE, SearchSpace
from repro.generator.suite import BenchmarkSuite
from repro.generator.zoo import ZOO_BUILDERS, build_zoo
from repro.nnir.flops import network_work
from repro.nnir.ops import OpKind


class TestSearchSpace:
    def test_default_is_valid(self):
        assert MOBILE_SEARCH_SPACE.input_resolution == 224

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(n_stages=(5, 2))
        with pytest.raises(ValueError):
            SearchSpace(blocks_per_stage=(0, 3))
        with pytest.raises(ValueError):
            SearchSpace(se_probability=1.5)
        with pytest.raises(ValueError):
            SearchSpace(macs_range=(100, 100))
        with pytest.raises(ValueError):
            SearchSpace(input_resolution=16)


class TestChannelScaling:
    def test_identity_at_one(self):
        assert _scale_channels(64, 1.0) == 64

    def test_rounds_to_multiple_of_eight(self):
        assert _scale_channels(100, 1.0) % 8 == 0
        assert _scale_channels(64, 0.75) == 48

    def test_never_below_divisor(self):
        assert _scale_channels(8, 0.1) == 8


class TestRandomGenerator:
    def test_generates_valid_networks_in_macs_range(self):
        gen = RandomNetworkGenerator(seed=1)
        lo, hi = MOBILE_SEARCH_SPACE.macs_range
        for i in range(5):
            net = gen.generate(f"n{i}")
            macs = network_work(net).macs
            assert lo <= macs <= hi
            assert net.output_shape.c == 1000

    def test_deterministic_given_seed(self):
        a = RandomNetworkGenerator(seed=5).generate("x")
        b = RandomNetworkGenerator(seed=5).generate("x")
        assert network_work(a).macs == network_work(b).macs
        assert a.n_layers == b.n_layers

    def test_different_seeds_differ(self):
        a = RandomNetworkGenerator(seed=1).generate("x")
        b = RandomNetworkGenerator(seed=2).generate("x")
        assert (
            network_work(a).macs != network_work(b).macs or a.n_layers != b.n_layers
        )

    def test_generate_many_names(self):
        nets = RandomNetworkGenerator(seed=0).generate_many(3, prefix="p")
        assert [n.name for n in nets] == ["p_000", "p_001", "p_002"]

    def test_networks_are_diverse(self):
        nets = RandomNetworkGenerator(seed=3).generate_many(8)
        macs = {network_work(n).macs for n in nets}
        assert len(macs) == 8

    def test_contains_inverted_bottlenecks(self):
        net = RandomNetworkGenerator(seed=0).generate("x")
        kinds = {layer.op.kind for layer in net.layers}
        assert OpKind.INVERTED_BOTTLENECK in kinds

    def test_exhausted_attempts_raise(self):
        space = SearchSpace(macs_range=(1, 2))  # impossible
        with pytest.raises(RuntimeError, match="could not sample"):
            RandomNetworkGenerator(space, seed=0, max_attempts=3).generate("x")

    def test_count_validation(self):
        with pytest.raises(ValueError):
            RandomNetworkGenerator(seed=0).generate_many(0)


class TestZoo:
    def test_exactly_18_networks(self):
        zoo = build_zoo()
        assert len(zoo) == 18
        assert len({n.name for n in zoo}) == 18

    def test_builder_names_match_network_names(self):
        for name, builder in ZOO_BUILDERS.items():
            assert builder().name == name

    @pytest.mark.parametrize(
        "name,lo,hi",
        [
            ("mobilenet_v1_1.0", 500, 650),  # published: 569 MMACs
            ("mobilenet_v2_1.0", 270, 340),  # published: 300 MMACs
            ("squeezenet_1.1", 300, 420),  # published: ~352 MMACs
            ("efficientnet_b0", 350, 470),  # published: ~390 MMACs
            ("mnasnet_a1", 280, 360),  # published: ~312 MMACs
        ],
    )
    def test_macs_near_published_values(self, name, lo, hi):
        macs_m = network_work(ZOO_BUILDERS[name]()) .macs / 1e6
        assert lo <= macs_m <= hi

    def test_width_variants_ordered(self):
        m050 = network_work(ZOO_BUILDERS["mobilenet_v1_0.5"]()).macs
        m075 = network_work(ZOO_BUILDERS["mobilenet_v1_0.75"]()).macs
        m100 = network_work(ZOO_BUILDERS["mobilenet_v1_1.0"]()).macs
        assert m050 < m075 < m100

    def test_all_networks_classify_1000_classes(self):
        for net in build_zoo():
            assert net.output_shape.c == 1000


class TestBenchmarkSuite:
    def test_default_composition(self):
        suite = BenchmarkSuite.default(n_random=10, seed=0)
        assert len(suite) == 28
        assert "mobilenet_v2_1.0" in suite
        assert "random_009" in suite

    def test_paper_scale_suite_has_118(self, small_suite):
        # The session fixture uses 12 random nets; the paper default is 100.
        full = BenchmarkSuite.default()
        assert len(full) == 118

    def test_lookup_by_name_and_index(self, small_suite):
        net = small_suite["mobilenet_v2_1.0"]
        assert small_suite[small_suite.index_of("mobilenet_v2_1.0")] is net

    def test_unknown_name_raises(self, small_suite):
        with pytest.raises(KeyError):
            small_suite["nonexistent"]
        with pytest.raises(KeyError):
            small_suite.index_of("nonexistent")

    def test_duplicate_names_rejected(self, small_suite):
        net = small_suite["fbnet_c"]
        with pytest.raises(ValueError, match="unique"):
            BenchmarkSuite([net, net])

    def test_work_is_cached(self, small_suite):
        w1 = small_suite.work("fbnet_c")
        w2 = small_suite.work("fbnet_c")
        assert w1 is w2

    def test_macs_millions_alignment(self, small_suite):
        macs = small_suite.macs_millions()
        assert macs.shape == (len(small_suite),)
        i = small_suite.index_of("mobilenet_v2_1.0")
        expected = network_work(small_suite["mobilenet_v2_1.0"]).macs / 1e6
        assert macs[i] == pytest.approx(expected)

    def test_subset_preserves_order(self, small_suite):
        sub = small_suite.subset(["fbnet_c", "mnasnet_a1"])
        assert sub.names == ["fbnet_c", "mnasnet_a1"]

    def test_save_load_roundtrip(self, small_suite, tmp_path):
        path = tmp_path / "suite.json"
        small_suite.save(path)
        loaded = BenchmarkSuite.load(path)
        assert loaded.names == small_suite.names
        assert np.allclose(loaded.macs_millions(), small_suite.macs_millions())
