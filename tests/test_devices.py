"""Tests for the device substrate: microarch, catalog, latency model."""

import pytest

from repro.devices.catalog import (
    CHIPSETS,
    CORE_FAMILIES,
    Chipset,
    DeviceFleet,
    build_fleet,
)
from repro.devices.device import Device
from repro.devices.latency import LatencyModel
from repro.devices.microarch import CoreMicroarch
from repro.generator.zoo import ZOO_BUILDERS
from repro.nnir.flops import network_work


class TestCoreMicroarch:
    def test_dotprod_quadruples_nothing_but_doubles_throughput(self):
        base = dict(year=2018, out_of_order=True, issue_width=4, l1_kb=64,
                    l2_kb=1024, utilization=0.5)
        with_dot = CoreMicroarch("a", simd_pipes=2, has_dotprod=True, **base)
        without = CoreMicroarch("b", simd_pipes=2, has_dotprod=False, **base)
        assert with_dot.peak_int8_macs_per_cycle == 2 * without.peak_int8_macs_per_cycle

    def test_pipes_scale_peak(self):
        base = dict(year=2018, out_of_order=True, issue_width=4, has_dotprod=True,
                    l1_kb=64, l2_kb=1024, utilization=0.5)
        one = CoreMicroarch("a", simd_pipes=1, **base)
        two = CoreMicroarch("b", simd_pipes=2, **base)
        assert two.peak_int8_macs_per_cycle == 2 * one.peak_int8_macs_per_cycle

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreMicroarch("x", 2018, True, 0, 1, True, 64, 1024, 0.5)
        with pytest.raises(ValueError):
            CoreMicroarch("x", 2018, True, 2, 1, True, 64, 1024, 1.5)


class TestCatalog:
    def test_paper_figure3_diversity(self):
        """22 core families, 38 chipsets — matching the paper."""
        assert len(CORE_FAMILIES) == 22
        assert len(CHIPSETS) == 38

    def test_every_chipset_core_family_exists(self):
        for chipset in CHIPSETS:
            assert chipset.core_family in CORE_FAMILIES

    def test_unknown_core_family_rejected(self):
        with pytest.raises(ValueError, match="unknown core family"):
            Chipset("Fake SoC", "Cortex-X99", 3.0, 10.0, (8,), 1.0)

    def test_fleet_default_covers_all_families(self):
        fleet = build_fleet(105, seed=0)
        assert len(fleet) == 105
        assert len(fleet.cpu_histogram()) == 22
        assert len(fleet.chipset_histogram()) == 38

    def test_fleet_contains_redmi_note_5_pro(self):
        fleet = build_fleet(105, seed=0)
        device = fleet["redmi_note_5_pro"]
        assert device.chipset == "Snapdragon 636"
        assert device.cpu_model == "Kryo 260 Gold"

    def test_fleet_deterministic(self):
        a = build_fleet(20, seed=3)
        b = build_fleet(20, seed=3)
        assert a.names == b.names
        assert a[5].governor_factor == b[5].governor_factor

    def test_fleet_seeds_differ(self):
        a = build_fleet(20, seed=3)
        b = build_fleet(20, seed=4)
        assert any(x.governor_factor != y.governor_factor for x, y in zip(a, b))

    def test_fleet_indexing(self):
        fleet = build_fleet(10, seed=0)
        assert fleet[fleet.names[3]] is fleet[3]
        assert fleet.index_of(fleet.names[3]) == 3
        assert fleet.names[3] in fleet
        with pytest.raises(KeyError):
            fleet["missing"]

    def test_subset(self):
        fleet = build_fleet(10, seed=0)
        sub = fleet.subset(fleet.names[2:4])
        assert len(sub) == 2 and sub.names == fleet.names[2:4]

    def test_hidden_slowdown_bounded(self):
        for device in build_fleet(105, seed=0):
            combined = device.thermal_factor / (
                device.governor_factor * device.sw_efficiency
            )
            assert combined <= 6.5 + 1e-9

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            build_fleet(0)


class TestDeviceValidation:
    def _core(self):
        return CORE_FAMILIES["Cortex-A53"]

    def test_valid_device(self):
        d = Device("x", "SoC", 2.0, 4, self._core(), 5.0)
        assert d.cpu_model == "Cortex-A53"
        assert d.effective_ghz == 2.0

    def test_governor_scales_effective_frequency(self):
        d = Device("x", "SoC", 2.0, 4, self._core(), 5.0, governor_factor=0.5)
        assert d.effective_ghz == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frequency_ghz": 0.0},
            {"dram_gb": 0},
            {"dram_bw_gbps": 0.0},
            {"governor_factor": 1.5},
            {"thermal_factor": 0.9},
            {"sw_efficiency": 2.0},
            {"dw_quality": 0.0},
        ],
    )
    def test_invalid_fields(self, kwargs):
        base = dict(
            name="x", chipset="SoC", frequency_ghz=2.0, dram_gb=4,
            core=self._core(), dram_bw_gbps=5.0,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            Device(**base)


class TestLatencyModel:
    def _device(self, **overrides):
        base = dict(
            name="d", chipset="SoC", frequency_ghz=2.0, dram_gb=4,
            core=CORE_FAMILIES["Kryo 485 Gold"], dram_bw_gbps=10.0,
        )
        base.update(overrides)
        return Device(**base)

    def test_latency_positive_and_finite(self):
        model = LatencyModel()
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        ms = model.network_latency_ms(self._device(), net)
        assert 1.0 < ms < 10_000.0

    def test_faster_clock_is_faster(self):
        model = LatencyModel()
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        slow = model.network_latency_ms(self._device(frequency_ghz=1.0), net)
        fast = model.network_latency_ms(self._device(frequency_ghz=2.8), net)
        assert fast < slow

    def test_dotprod_core_is_faster(self):
        model = LatencyModel()
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        old = model.network_latency_ms(
            self._device(core=CORE_FAMILIES["Cortex-A53"]), net
        )
        new = model.network_latency_ms(
            self._device(core=CORE_FAMILIES["Cortex-A76"]), net
        )
        assert new < old / 2

    def test_thermal_factor_scales_latency(self):
        model = LatencyModel()
        net = ZOO_BUILDERS["mobilenet_v3_small"]()
        cool = model.network_latency_ms(self._device(), net)
        hot = model.network_latency_ms(self._device(thermal_factor=2.0), net)
        assert hot == pytest.approx(2.0 * cool, rel=1e-9)

    def test_dw_quality_affects_depthwise_heavy_nets_more(self):
        model = LatencyModel()
        dw_heavy = ZOO_BUILDERS["mobilenet_v1_1.0"]()  # many depthwise layers
        dense = ZOO_BUILDERS["squeezenet_1.1"]()  # none
        good, bad = self._device(dw_quality=1.4), self._device(dw_quality=0.5)
        ratio_dw = model.network_latency_ms(bad, dw_heavy) / model.network_latency_ms(
            good, dw_heavy
        )
        ratio_dense = model.network_latency_ms(bad, dense) / model.network_latency_ms(
            good, dense
        )
        assert ratio_dw > ratio_dense

    def test_bigger_network_is_slower_on_same_device(self):
        model = LatencyModel()
        device = self._device()
        small = model.network_latency_ms(ZOO_BUILDERS["mobilenet_v3_small"](), device) \
            if False else model.network_latency_ms(device, ZOO_BUILDERS["mobilenet_v3_small"]())
        big = model.network_latency_ms(device, ZOO_BUILDERS["mobilenet_v2_1.4"]())
        assert big > small

    def test_accepts_precomputed_work(self):
        model = LatencyModel()
        net = ZOO_BUILDERS["mobilenet_v3_small"]()
        work = network_work(net)
        assert model.network_latency_ms(self._device(), work) == pytest.approx(
            model.network_latency_ms(self._device(), net)
        )

    def test_deterministic(self):
        model = LatencyModel()
        net = ZOO_BUILDERS["fbnet_c"]()
        d = self._device()
        assert model.network_latency_ms(d, net) == model.network_latency_ms(d, net)
