"""Bulk query plane tests: byte-identity against the per-request and
micro-batched paths, content-hash dedup within and across calls, LRU
eviction under a tiny budget, incremental re-encode correctness after
depth/width/kernel mutations, and hot-swap (refresh) freshness."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.collaborative import CollaborativeRepository
from repro.core.representation import network_content_hash
from repro.search.space import EvolutionSpace, mutate, random_genotype
from repro.serve import (
    BulkQueryPlane,
    ModelRegistry,
    PredictRequest,
    PredictionService,
)
from repro.serve.service import MISS_UNENCODABLE


@pytest.fixture(scope="module")
def served(small_suite, small_dataset, tmp_path_factory):
    """A published registry plus a warm service and bulk plane."""
    repo = CollaborativeRepository(
        small_dataset, small_suite, signature_size=5, seed=0
    )
    for device in small_dataset.device_names[:12]:
        repo.join(device, 0.5)
    registry = ModelRegistry(tmp_path_factory.mktemp("bulk-registry"))
    repo.publish_checkpoint(registry)
    service = PredictionService(
        registry, list(small_suite), dataset=small_dataset
    )
    yield SimpleNamespace(
        repo=repo,
        registry=registry,
        service=service,
        device=small_dataset.device_names[0],
        suite=small_suite,
        dataset=small_dataset,
    )
    service.close()


def _candidates(n, seed=0, space=None):
    space = space or EvolutionSpace()
    rng = np.random.default_rng(seed)
    genotypes = [random_genotype(space, rng) for _ in range(n)]
    return [g.to_network(space, f"cand-{i}") for i, g in enumerate(genotypes)]


class TestByteIdentity:
    def test_bulk_equals_per_request_definitions(self, served):
        nets = _candidates(24, seed=1)
        plane = BulkQueryPlane(served.service)
        bulk = plane.predict_block(nets, served.device)
        with PredictionService(
            served.registry,
            list(served.suite),
            dataset=served.dataset,
            max_batch=1,
            max_wait_ms=0.0,
        ) as single:
            per = single.predict_many(
                [
                    PredictRequest(network=n.name, device=served.device, definition=n)
                    for n in nets
                ]
            )
        assert all(r.ok for r in bulk)
        a = np.array([r.latency_ms for r in bulk])
        b = np.array([r.latency_ms for r in per])
        assert a.tobytes() == b.tobytes()

    def test_bulk_equals_micro_batched(self, served):
        nets = _candidates(16, seed=2)
        plane = BulkQueryPlane(served.service)
        bulk = plane.predict_block(nets, served.device)
        batched = served.service.predict_many(
            [
                PredictRequest(network=n.name, device=served.device, definition=n)
                for n in nets
            ]
        )
        a = np.array([r.latency_ms for r in bulk])
        b = np.array([r.latency_ms for r in batched])
        assert a.tobytes() == b.tobytes()

    def test_suite_networks_match_named_path(self, served):
        """A suite network through the bulk plane equals the name path."""
        names = served.dataset.network_names[:8]
        nets = [served.suite[n] for n in names]
        plane = BulkQueryPlane(served.service)
        bulk = plane.predict_block(nets, served.device)
        named = served.service.predict_many(
            [PredictRequest(network=n, device=served.device) for n in names]
        )
        a = np.array([r.latency_ms for r in bulk])
        b = np.array([r.latency_ms for r in named])
        assert a.tobytes() == b.tobytes()


class TestDedupAndCaches:
    def test_within_call_dedup(self, served):
        nets = _candidates(6, seed=3)
        block = nets + [nets[0], nets[3]]  # repeats by object
        plane = BulkQueryPlane(served.service)
        responses = plane.predict_block(block, served.device)
        assert plane.stats["predicted"] == 6
        assert plane.stats["dedup_hits"] == 2
        assert responses[6].latency_ms == responses[0].latency_ms
        assert responses[7].latency_ms == responses[3].latency_ms

    def test_rename_still_dedups(self, served):
        """Content hashing ignores names: a renamed clone is a dup."""
        space = EvolutionSpace()
        rng = np.random.default_rng(4)
        g = random_genotype(space, rng)
        a = g.to_network(space, "alpha")
        b = g.to_network(space, "beta")
        assert network_content_hash(a) == network_content_hash(b)
        plane = BulkQueryPlane(served.service)
        responses = plane.predict_block([a, b], served.device)
        assert plane.stats["predicted"] == 1
        assert responses[0].latency_ms == responses[1].latency_ms
        assert responses[1].network == "beta"

    def test_cross_call_prediction_cache(self, served):
        nets = _candidates(5, seed=5)
        plane = BulkQueryPlane(served.service)
        first = plane.predict_block(nets, served.device)
        second = plane.predict_block(nets, served.device)
        assert plane.stats["predicted"] == 5
        assert plane.stats["pred_hits"] == 5
        a = np.array([r.latency_ms for r in first])
        b = np.array([r.latency_ms for r in second])
        assert a.tobytes() == b.tobytes()

    def test_encoding_lru_eviction_under_tiny_budget(self, served):
        nets = _candidates(8, seed=6)
        plane = BulkQueryPlane(
            served.service, max_encodings=2, max_predictions=2
        )
        responses = plane.predict_block(nets, served.device)
        assert all(r.ok for r in responses)
        assert plane.stats["enc_evictions"] >= 6
        info = plane.cache_info()
        assert info["encodings"] <= 2
        assert info["predictions"] <= 2
        # Evicted encodings re-encode on the next call, but the values
        # must not change (the caches are an optimization, not state).
        again = plane.predict_block(nets, served.device)
        a = np.array([r.latency_ms for r in responses])
        b = np.array([r.latency_ms for r in again])
        assert a.tobytes() == b.tobytes()

    def test_byte_budget_evicts(self, served):
        nets = _candidates(6, seed=7)
        one_encoding = 64  # bytes: far below a single entry's footprint
        plane = BulkQueryPlane(served.service, max_encoding_bytes=one_encoding)
        plane.predict_block(nets, served.device)
        assert plane.stats["enc_evictions"] >= 5
        assert plane.cache_info()["encodings"] == 1  # keeps at least one


class TestMutationChildren:
    def test_children_reuse_parent_encodings(self, served):
        space = EvolutionSpace()
        rng = np.random.default_rng(8)
        parent_g = random_genotype(space, rng)
        parent = parent_g.to_network(space, "parent")
        parent_hash = network_content_hash(parent)
        children = []
        for i in range(6):
            child_g, _ = mutate(parent_g, space, rng)
            children.append(child_g.to_network(space, f"child-{i}"))
        plane = BulkQueryPlane(served.service)
        first = plane.predict_block([parent], served.device)
        hinted = plane.predict_block(
            children,
            served.device,
            parent_hashes=[parent_hash] * len(children),
        )
        # Same children, no hints, fresh plane: identical predictions.
        blank = BulkQueryPlane(served.service)
        unhinted = blank.predict_block(children, served.device)
        assert first[0].ok
        a = np.array([r.latency_ms for r in hinted])
        b = np.array([r.latency_ms for r in unhinted])
        assert a.tobytes() == b.tobytes()

    def test_parent_hashes_must_align(self, served):
        plane = BulkQueryPlane(served.service)
        with pytest.raises(ValueError, match="align"):
            plane.predict_block(
                _candidates(3, seed=9), served.device, parent_hashes=[None]
            )


class TestMisses:
    def test_too_deep_candidate_misses_unencodable(self, served):
        encoder = served.service._enc.encoder
        space = EvolutionSpace(max_blocks=encoder.max_layers)  # way too deep
        rng = np.random.default_rng(10)
        g = random_genotype(space, rng)
        while g.to_network(space, "deep").n_layers <= encoder.max_layers:
            g, _ = mutate(g, space, rng)
        deep = g.to_network(space, "deep")
        ok = _candidates(2, seed=11)
        plane = BulkQueryPlane(served.service)
        responses = plane.predict_block([ok[0], deep, ok[1]], served.device)
        assert responses[0].ok and responses[2].ok
        assert responses[1].error == MISS_UNENCODABLE
        assert plane.stats["unencodable"] == 1

    def test_cold_device_misses_whole_block(self, served):
        plane = BulkQueryPlane(served.service)
        responses = plane.predict_block(
            _candidates(3, seed=12), "never-seen-device"
        )
        assert [r.error for r in responses] == ["cold_device"] * 3

    def test_cold_device_served_with_shipped_signature(self, served):
        sig = {
            n: served.dataset.latency(served.device, n)
            for n in served.repo.signature_names
        }
        plane = BulkQueryPlane(served.service)
        shipped = plane.predict_block(
            _candidates(4, seed=13), "fresh-device", signature_ms=sig
        )
        warm = plane.predict_block(_candidates(4, seed=13), served.device)
        assert all(r.ok for r in shipped)
        # Same signature values as the warm device -> same predictions.
        a = np.array([r.latency_ms for r in shipped])
        b = np.array([r.latency_ms for r in warm])
        assert a.tobytes() == b.tobytes()


class TestHotSwap:
    def test_refresh_does_not_serve_stale_predictions(
        self, small_suite, small_dataset, tmp_path
    ):
        repo = CollaborativeRepository(
            small_dataset, small_suite, signature_size=5, seed=0
        )
        for device in small_dataset.device_names[:10]:
            repo.join(device, 0.5)
        registry = ModelRegistry(tmp_path / "registry")
        repo.publish_checkpoint(registry)
        nets = _candidates(10, seed=14)
        device = small_dataset.device_names[0]
        with PredictionService(
            registry, list(small_suite), dataset=small_dataset
        ) as service:
            plane = BulkQueryPlane(service)
            before = plane.predict_block(nets, device)
            assert {r.model_version for r in before} == {1}

            # Retrain on a grown membership and hot-swap mid-search.
            for extra in small_dataset.device_names[10:16]:
                repo.join(extra, 0.5)
            repo.publish_checkpoint(registry)
            service.refresh()
            after = plane.predict_block(nets, device)
            assert {r.model_version for r in after} == {2}
            # The v1 values were cached; v2 must NOT reuse them.
            a = np.array([r.latency_ms for r in before])
            b = np.array([r.latency_ms for r in after])
            assert a.tobytes() != b.tobytes()
            # And the v2 values must equal a fresh, cache-less service.
            with PredictionService(
                registry, list(small_suite), dataset=small_dataset
            ) as fresh:
                reference = fresh.predict_many(
                    [
                        PredictRequest(network=n.name, device=device, definition=n)
                        for n in nets
                    ]
                )
            c = np.array([r.latency_ms for r in reference])
            assert b.tobytes() == c.tobytes()


class TestPerRequestDefinitionPath:
    def test_unknown_name_without_definition_still_misses(self, served):
        response = served.service.predict(
            PredictRequest(network="no-such-net", device=served.device)
        )
        assert response.error == "unknown_network"

    def test_definition_deeper_than_encoder_misses(self, served):
        encoder = served.service._enc.encoder
        space = EvolutionSpace(max_blocks=encoder.max_layers)
        rng = np.random.default_rng(15)
        g = random_genotype(space, rng)
        while g.to_network(space, "deep").n_layers <= encoder.max_layers:
            g, _ = mutate(g, space, rng)
        response = served.service.predict(
            PredictRequest(
                network="deep",
                device=served.device,
                definition=g.to_network(space, "deep"),
            )
        )
        assert response.error == MISS_UNENCODABLE
