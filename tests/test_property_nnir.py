"""Property-based tests for the IR, generator and simulator invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.representation import NetworkEncoder
from repro.devices.catalog import CHIPSETS, build_fleet, _make_device
from repro.devices.latency import LatencyModel
from repro.generator.random_gen import RandomNetworkGenerator
from repro.nnir.flops import network_work
from repro.nnir.ops import (
    Conv2d,
    DepthwiseConv2d,
    InvertedBottleneck,
    TensorShape,
)
from repro.nnir.serialize import network_from_dict, network_to_dict


class TestOpProperties:
    @settings(max_examples=50)
    @given(
        c_in=st.integers(1, 64),
        c_out=st.integers(1, 64),
        kernel=st.sampled_from([1, 3, 5, 7]),
        stride=st.integers(1, 2),
        hw=st.integers(8, 64),
    )
    def test_conv_shape_and_work_consistent(self, c_in, c_out, kernel, stride, hw):
        pad = kernel // 2
        conv = Conv2d(c_in, c_out, kernel, stride, pad)
        shape = TensorShape(c_in, hw, hw)
        out = conv.out_shape((shape,))
        (work,) = conv.primitives((shape,))
        assert work.macs == kernel * kernel * c_in * c_out * out.h * out.w
        assert work.output_bytes == out.numel
        assert out.h == (hw + 2 * pad - kernel) // stride + 1

    @settings(max_examples=50)
    @given(
        c=st.integers(1, 128),
        kernel=st.sampled_from([3, 5]),
        hw=st.integers(8, 64),
    )
    def test_depthwise_cheaper_than_dense(self, c, kernel, hw):
        shape = TensorShape(c, hw, hw)
        dw = DepthwiseConv2d(c, kernel, 1, kernel // 2).primitives((shape,))[0]
        dense = Conv2d(c, c, kernel, 1, kernel // 2).primitives((shape,))[0]
        assert dw.macs * c == dense.macs

    @settings(max_examples=40)
    @given(
        c_in=st.integers(8, 64),
        c_out=st.integers(8, 64),
        expansion=st.sampled_from([1, 3, 6]),
        kernel=st.sampled_from([3, 5, 7]),
        stride=st.integers(1, 2),
        use_se=st.booleans(),
    )
    def test_inverted_bottleneck_work_positive_and_consistent(
        self, c_in, c_out, expansion, kernel, stride, use_se
    ):
        block = InvertedBottleneck(c_in, c_out, expansion, kernel, stride, use_se)
        shape = TensorShape(c_in, 32, 32)
        out = block.out_shape((shape,))
        prims = block.primitives((shape,))
        assert out.c == c_out
        assert sum(p.macs for p in prims) > 0
        assert all(p.macs >= 0 for p in prims)
        assert block.param_count((shape,)) > 0


class TestGeneratorProperties:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_generated_networks_valid_and_in_range(self, seed):
        gen = RandomNetworkGenerator(seed=seed)
        net = gen.generate("x")
        work = network_work(net)  # would raise on invalid shapes
        lo, hi = gen.space.macs_range
        assert lo <= work.macs <= hi

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_serialization_roundtrip_preserves_work(self, seed):
        net = RandomNetworkGenerator(seed=seed).generate("x")
        clone = network_from_dict(network_to_dict(net))
        assert network_work(clone).macs == network_work(net).macs
        assert clone.layer_shapes() == net.layer_shapes()

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_encoding_fixed_width_and_finite(self, seed):
        net = RandomNetworkGenerator(seed=seed).generate("x")
        encoder = NetworkEncoder([net])
        vec = encoder.encode(net)
        assert vec.shape == (encoder.width,)
        assert np.isfinite(vec).all()


class TestDeviceProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), chipset_idx=st.integers(0, len(CHIPSETS) - 1))
    def test_sampled_devices_always_valid(self, seed, chipset_idx):
        rng = np.random.default_rng(seed)
        device = _make_device("d", CHIPSETS[chipset_idx], rng)
        # Construction enforces bounds; additionally the hidden
        # slowdown cap must hold.
        combined = device.thermal_factor / (
            device.governor_factor * device.sw_efficiency
        )
        assert combined <= 6.5 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_latency_positive_for_any_device_network(self, seed):
        fleet = build_fleet(3, seed=seed)
        net = RandomNetworkGenerator(seed=seed).generate("x")
        model = LatencyModel()
        for device in fleet:
            ms = model.network_latency_ms(device, net)
            assert np.isfinite(ms) and ms > 0
