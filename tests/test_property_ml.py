"""Property-based tests (hypothesis) for the ML substrate invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.gbt import GradientBoostedTrees
from repro.ml.kmeans import KMeans
from repro.ml.metrics import _ranks, pearsonr, r2_score, rmse, spearmanr
from repro.ml.model_selection import train_test_split
from repro.ml.mutual_info import discretize, entropy, joint_entropy, mutual_information
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeRegressor

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def vec(min_size=2, max_size=50):
    return arrays(np.float64, st.integers(min_size, max_size), elements=finite)


@st.composite
def paired_vectors(draw, min_size=2, max_size=50):
    n = draw(st.integers(min_size, max_size))
    a = draw(arrays(np.float64, n, elements=finite))
    b = draw(arrays(np.float64, n, elements=finite))
    return a, b


class TestMetricProperties:
    @given(paired_vectors())
    def test_r2_of_exact_prediction_is_one(self, ab):
        a, _ = ab
        assert r2_score(a, a) == 1.0

    @given(paired_vectors())
    def test_r2_never_exceeds_one(self, ab):
        a, b = ab
        assert r2_score(a, b) <= 1.0

    @given(paired_vectors())
    def test_rmse_nonnegative_and_symmetric(self, ab):
        a, b = ab
        assert rmse(a, b) >= 0.0
        assert rmse(a, b) == rmse(b, a)

    @given(paired_vectors())
    def test_correlations_bounded(self, ab):
        a, b = ab
        assert -1.0 <= pearsonr(a, b) <= 1.0
        assert -1.0 <= spearmanr(a, b) <= 1.0

    @given(paired_vectors())
    def test_correlation_symmetry(self, ab):
        a, b = ab
        assert pearsonr(a, b) == pearsonr(b, a)

    @given(vec())
    def test_ranks_are_permutation_sums(self, a):
        ranks = _ranks(a)
        # Fractional ranks always sum to n(n+1)/2 regardless of ties.
        n = a.size
        assert np.isclose(ranks.sum(), n * (n + 1) / 2)

    @given(
        st.lists(st.integers(-1000, 1000), min_size=2, max_size=40, unique=True),
        st.sampled_from([0.5, 2.0, 10.0]),
        st.sampled_from([-10.0, 0.0, 10.0]),
    )
    def test_spearman_invariant_to_affine_transform(self, values, scale, shift):
        # Integer-valued inputs and benign scale/shift avoid float
        # rounding creating or destroying rank ties.
        a = np.array(values, dtype=float)
        b = np.arange(a.size, dtype=float)
        assert np.isclose(spearmanr(a, b), spearmanr(scale * a + shift, b))


class TestMutualInfoProperties:
    @given(paired_vectors(min_size=8, max_size=100))
    def test_mi_nonnegative_and_symmetric(self, ab):
        a, b = ab
        assert mutual_information(a, b) >= 0.0
        assert np.isclose(mutual_information(a, b), mutual_information(b, a))

    @given(vec(min_size=8, max_size=100))
    def test_entropy_bounded_by_log_bins(self, a):
        binned = discretize(a, n_bins=8)
        assert 0.0 <= entropy(binned) <= np.log(8) + 1e-9

    @given(paired_vectors(min_size=8, max_size=100))
    def test_joint_entropy_at_least_marginal(self, ab):
        a, b = ab
        da, db = discretize(a, 4), discretize(b, 4)
        joint = joint_entropy(da, db)
        assert joint >= entropy(da) - 1e-9
        assert joint >= entropy(db) - 1e-9

    @given(paired_vectors(min_size=8, max_size=100))
    def test_mi_bounded_by_min_entropy(self, ab):
        a, b = ab
        da, db = discretize(a, 4), discretize(b, 4)
        mi = entropy(da) + entropy(db) - joint_entropy(da, db)
        assert mi <= min(entropy(da), entropy(db)) + 1e-9


class TestSplitProperties:
    @given(st.integers(2, 500), st.floats(0.05, 0.95), st.integers(0, 100))
    def test_split_partitions(self, n, frac, seed):
        train, test = train_test_split(n, frac, rng=seed)
        assert np.array_equal(np.sort(np.concatenate([train, test])), np.arange(n))
        assert train.size >= 1 and test.size >= 1


class TestScalerProperties:
    @settings(max_examples=25)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 30), st.integers(1, 8)),
            elements=st.floats(-1e4, 1e4, allow_nan=False),
        )
    )
    def test_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6)


class TestTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 200))
    def test_tree_predictions_within_target_hull(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        y = rng.normal(size=60)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        pred = tree.predict(rng.normal(size=(30, 3)))
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100))
    def test_gbt_train_rmse_monotone(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(80, 4))
        y = X[:, 0] * 2 + rng.normal(size=80)
        model = GradientBoostedTrees(n_estimators=15).fit(X, y)
        rmses = model.train_rmse_
        assert all(b <= a + 1e-9 for a, b in zip(rmses, rmses[1:]))


class TestKMeansProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100), st.integers(1, 4))
    def test_labels_in_range_and_inertia_matches(self, seed, k):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 3))
        km = KMeans(k, seed=seed, n_init=2).fit(X)
        assert set(km.labels_.tolist()) <= set(range(k))
        manual = sum(
            ((X[i] - km.cluster_centers_[km.labels_[i]]) ** 2).sum()
            for i in range(30)
        )
        assert np.isclose(km.inertia_, manual, rtol=1e-9)
