"""Tests for the benchmark regression gate (benchmarks/regression.py):
compare() semantics on synthetic baselines, baseline round-trips, the
synthetic-slowdown knob, and end-to-end pass/fail behavior."""

import json

import pytest

import benchmarks.regression as regression


BASELINE = {
    "speedup": {"value": 4.0, "direction": "higher", "gate": True},
    "elapsed_s": {"value": 1.0, "direction": "lower", "gate": True},
    "wall_s": {"value": 9.9, "direction": "lower", "gate": False},
}


class TestCompare:
    def test_identical_run_passes(self):
        current = {"speedup": 4.0, "elapsed_s": 1.0, "wall_s": 50.0}
        assert regression.compare("b", BASELINE, current) == []

    def test_within_tolerance_passes(self):
        current = {"speedup": 3.3, "elapsed_s": 1.15}
        assert regression.compare("b", BASELINE, current, 0.2) == []

    def test_higher_metric_regression_fails(self):
        current = {"speedup": 1.9, "elapsed_s": 1.0}
        violations = regression.compare("b", BASELINE, current, 0.2)
        assert [v.metric for v in violations] == ["speedup"]
        assert violations[0].threshold == pytest.approx(3.2)
        assert "fell below" in str(violations[0])

    def test_lower_metric_regression_fails(self):
        current = {"speedup": 4.0, "elapsed_s": 2.0}
        violations = regression.compare("b", BASELINE, current, 0.2)
        assert [v.metric for v in violations] == ["elapsed_s"]
        assert "rose above" in str(violations[0])

    def test_synthetic_2x_slowdown_fails_both_directions(self):
        current = {"speedup": 2.0, "elapsed_s": 2.0}
        violations = regression.compare("b", BASELINE, current, 0.2)
        assert {v.metric for v in violations} == {"speedup", "elapsed_s"}

    def test_ungated_metric_never_fails(self):
        current = {"speedup": 4.0, "elapsed_s": 1.0, "wall_s": 500.0}
        assert regression.compare("b", BASELINE, current) == []

    def test_per_metric_tolerance_overrides_default(self):
        baseline = {"speedup": {"value": 4.0, "direction": "higher", "tolerance": 0.45}}
        assert regression.compare("b", baseline, {"speedup": 2.3}, 0.05) == []
        assert regression.compare("b", baseline, {"speedup": 2.1}, 0.05) != []

    def test_missing_metric_is_ignored(self):
        assert regression.compare("b", BASELINE, {"speedup": 4.0}) == []

    def test_unknown_direction_raises(self):
        baseline = {"m": {"value": 1.0, "direction": "sideways"}}
        with pytest.raises(ValueError):
            regression.compare("b", baseline, {"m": 1.0})


class TestStaleBaselines:
    """A committed baseline that cannot gate the run must say so clearly."""

    SPECS = {
        "speedup": regression.MetricSpec("higher", tolerance=0.35),
        "wall_s": regression.MetricSpec("lower", gate=False),
    }

    def test_baseline_missing_gated_metric_raises(self):
        with pytest.raises(regression.BaselineError, match="speedup.*--update"):
            regression.compare("b", {}, {"speedup": 4.0}, specs=self.SPECS)

    def test_baseline_missing_ungated_metric_is_fine(self):
        baseline = {"speedup": {"value": 4.0, "direction": "higher"}}
        current = {"speedup": 4.0, "wall_s": 1.0}
        assert regression.compare("b", baseline, current, specs=self.SPECS) == []

    def test_without_specs_missing_metrics_stay_ignored(self):
        # Fresh checkouts / --update runs have no committed file to
        # hold to account; the old lenient semantics apply.
        assert regression.compare("b", {}, {"speedup": 4.0}) == []

    def test_malformed_entry_without_value_raises(self):
        baseline = {"speedup": {"direction": "higher", "gate": True}}
        with pytest.raises(regression.BaselineError, match="malformed.*speedup"):
            regression.compare("b", baseline, {"speedup": 4.0})

    def test_run_gate_fails_cleanly_on_stale_committed_baseline(
        self, tmp_path, monkeypatch, capsys
    ):
        # Commit a baseline under yesterday's specs, then grow the
        # bench a new gated metric: the gate must fail with a clear
        # message, not silently pass or crash with a KeyError.
        old_specs = {"speedup": regression.MetricSpec("higher", tolerance=0.35)}
        monkeypatch.setattr(
            regression,
            "BENCHES",
            {"fake": (_fake_bench({"speedup": 4.0}), old_specs)},
        )
        args = ["--baseline-dir", str(tmp_path), "--only", "fake"]
        assert regression.run_gate([*args, "--update"]) == 0

        new_specs = dict(old_specs, p99=regression.MetricSpec("lower", tolerance=0.3))
        monkeypatch.setitem(
            regression.BENCHES,
            "fake",
            (_fake_bench({"speedup": 4.0, "p99": 1.0}), new_specs),
        )
        assert regression.run_gate(args) == 1
        err = capsys.readouterr().err
        assert "lacks gated metric" in err
        assert "p99" in err
        assert "--update" in err


class TestBaselineFiles:
    def test_write_then_load_roundtrip(self, tmp_path):
        specs = {
            "speedup": regression.MetricSpec("higher", tolerance=0.35),
            "elapsed_s": regression.MetricSpec("lower", gate=False),
        }
        current = {"speedup": 4.71238, "elapsed_s": 0.3005}
        path = regression.write_baseline("unit", current, specs, tmp_path)
        assert path == tmp_path / "BENCH_unit.json"
        loaded = regression.load_baseline("unit", tmp_path)
        assert loaded["benchmark"] == "unit"
        assert loaded["metrics"]["speedup"]["value"] == pytest.approx(4.7124)
        assert loaded["metrics"]["speedup"]["tolerance"] == 0.35
        assert loaded["metrics"]["elapsed_s"]["gate"] is False

    def test_load_missing_baseline_returns_none(self, tmp_path):
        assert regression.load_baseline("nope", tmp_path) is None

    def test_committed_baselines_are_valid(self):
        """The repo's own BENCH_*.json files parse and are gateable."""
        for name in regression.BENCHES:
            baseline = regression.load_baseline(name)
            assert baseline is not None, f"missing committed baseline for {name}"
            assert baseline["benchmark"] == name
            _, specs = regression.BENCHES[name]
            for metric, entry in baseline["metrics"].items():
                assert metric in specs
                assert entry["direction"] in ("higher", "lower")
                assert entry["value"] > 0
                if entry.get("gate", True):
                    # A gated tolerance must stay < 0.5 so a synthetic
                    # 2x slowdown always trips the gate.
                    tolerance = entry.get("tolerance", regression.DEFAULT_TOLERANCE)
                    assert tolerance < 0.5


class TestSlowdownKnob:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SLOWDOWN", raising=False)
        assert regression._slowdown() == 1.0

    def test_parses_factor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SLOWDOWN", "2.5")
        assert regression._slowdown() == 2.5

    def test_rejects_speedup(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SLOWDOWN", "0.5")
        with pytest.raises(ValueError):
            regression._slowdown()

    def test_timed_inflates_only_marked_paths(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SLOWDOWN", "1000000")
        _, plain = regression._timed(lambda: None)
        _, inflated = regression._timed(lambda: None, inflate=True)
        assert plain < 1.0
        assert inflated > plain


def _fake_bench(metrics):
    def bench(scale):
        return dict(metrics)

    return bench


_FAKE_SPECS = {
    "speedup": regression.MetricSpec("higher", tolerance=0.35),
    "elapsed_s": regression.MetricSpec("lower", gate=False),
}


class TestRunGate:
    def test_update_then_pass_then_fail(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            regression,
            "BENCHES",
            {"fake": (_fake_bench({"speedup": 4.0, "elapsed_s": 1.0}), _FAKE_SPECS)},
        )
        args = ["--baseline-dir", str(tmp_path), "--only", "fake"]
        assert regression.run_gate([*args, "--update"]) == 0
        assert (tmp_path / "BENCH_fake.json").exists()

        # Same numbers: gate passes.
        assert regression.run_gate(args) == 0
        assert "gate passed" in capsys.readouterr().out

        # Halved speedup: gate fails (tolerance 0.35 < 0.5).
        monkeypatch.setitem(
            regression.BENCHES,
            "fake",
            (_fake_bench({"speedup": 2.0, "elapsed_s": 1.0}), _FAKE_SPECS),
        )
        assert regression.run_gate(args) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        assert "fake.speedup" in captured.err

        # Informational metric ballooning does not gate.
        monkeypatch.setitem(
            regression.BENCHES,
            "fake",
            (_fake_bench({"speedup": 4.0, "elapsed_s": 99.0}), _FAKE_SPECS),
        )
        assert regression.run_gate(args) == 0

    def test_missing_baseline_warns_but_passes(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            regression,
            "BENCHES",
            {"fake": (_fake_bench({"speedup": 4.0}), _FAKE_SPECS)},
        )
        args = ["--baseline-dir", str(tmp_path), "--only", "fake"]
        assert regression.run_gate(args) == 0
        assert "no baseline" in capsys.readouterr().err

    def test_telemetry_report_is_written(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            regression,
            "BENCHES",
            {"fake": (_fake_bench({"speedup": 4.0}), _FAKE_SPECS)},
        )
        from repro import telemetry

        report = tmp_path / "gate.jsonl"
        with telemetry.scoped_registry():
            telemetry.disable()  # run_gate --telemetry-out must enable it
            code = regression.run_gate(
                [
                    "--baseline-dir", str(tmp_path), "--only", "fake",
                    "--update", "--telemetry-out", str(report),
                ]
            )
        assert code == 0
        lines = [json.loads(line) for line in report.read_text().splitlines()]
        assert lines[-1]["type"] == "summary"
        assert any(
            line.get("name") == "stage.bench_fake"
            for line in lines
            if line["type"] == "histogram"
        )

    def test_real_small_scale_cache_bench_with_injected_slowdown(
        self, tmp_path, monkeypatch
    ):
        """End-to-end on the real cache bench: baseline, pass, then a
        4x injected slowdown must fail the gate."""
        args = ["--baseline-dir", str(tmp_path), "--scale", "small", "--only", "cache"]
        monkeypatch.delenv("REPRO_BENCH_SLOWDOWN", raising=False)
        assert regression.run_gate([*args, "--update"]) == 0
        monkeypatch.setenv("REPRO_BENCH_SLOWDOWN", "4.0")
        assert regression.run_gate(args) == 1


class TestGateReporting:
    def test_informational_metrics_appear_with_info_marker(
        self, tmp_path, monkeypatch, capsys
    ):
        """"gate": false metrics must show up marked info, not vanish."""
        monkeypatch.setattr(
            regression,
            "BENCHES",
            {"fake": (_fake_bench({"speedup": 4.0, "elapsed_s": 1.0}), _FAKE_SPECS)},
        )
        args = ["--baseline-dir", str(tmp_path), "--only", "fake"]
        assert regression.run_gate([*args, "--update"]) == 0
        capsys.readouterr()
        assert regression.run_gate(args) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if "fake.elapsed_s" in line]
        assert lines and "info" in lines[0]
        assert any("fake.speedup" in line and "ok" in line for line in out.splitlines())

    def test_baseline_only_metric_is_reported_not_dropped(
        self, tmp_path, monkeypatch, capsys
    ):
        """A metric the committed baseline has but the current run no
        longer produces (a retired informational metric) still gets a
        table row, with "-" for current."""
        monkeypatch.setattr(
            regression,
            "BENCHES",
            {"fake": (_fake_bench({"speedup": 4.0, "elapsed_s": 1.0}), _FAKE_SPECS)},
        )
        args = ["--baseline-dir", str(tmp_path), "--only", "fake"]
        assert regression.run_gate([*args, "--update"]) == 0
        monkeypatch.setitem(
            regression.BENCHES,
            "fake",
            (_fake_bench({"speedup": 4.0}), {"speedup": _FAKE_SPECS["speedup"]}),
        )
        capsys.readouterr()
        assert regression.run_gate(args) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if "fake.elapsed_s" in line]
        assert lines, "baseline-only metric dropped from the report"
        assert "info" in lines[0] and "-" in lines[0]

    def test_summary_out_writes_markdown_table(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            regression,
            "BENCHES",
            {"fake": (_fake_bench({"speedup": 4.0, "elapsed_s": 1.0}), _FAKE_SPECS)},
        )
        summary = tmp_path / "summary.md"
        args = ["--baseline-dir", str(tmp_path), "--only", "fake"]
        assert regression.run_gate([*args, "--update"]) == 0
        assert (
            regression.run_gate([*args, "--summary-out", str(summary)]) == 0
        )
        text = summary.read_text()
        assert "| metric | baseline | current | status |" in text
        assert "`fake.speedup`" in text
        assert "All gated metrics within tolerance." in text
        assert "FAIL" not in text

    def test_summary_out_bolds_failures_and_lists_violations(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            regression,
            "BENCHES",
            {"fake": (_fake_bench({"speedup": 4.0, "elapsed_s": 1.0}), _FAKE_SPECS)},
        )
        summary = tmp_path / "summary.md"
        args = ["--baseline-dir", str(tmp_path), "--only", "fake"]
        assert regression.run_gate([*args, "--update"]) == 0
        monkeypatch.setitem(
            regression.BENCHES,
            "fake",
            (_fake_bench({"speedup": 1.0, "elapsed_s": 1.0}), _FAKE_SPECS),
        )
        assert regression.run_gate([*args, "--summary-out", str(summary)]) == 1
        text = summary.read_text()
        assert "**FAIL**" in text
        assert "gated metric(s) regressed" in text
        assert "fake.speedup" in text

    def test_summary_out_appends_like_github_step_summary(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            regression,
            "BENCHES",
            {"fake": (_fake_bench({"speedup": 4.0}), _FAKE_SPECS)},
        )
        summary = tmp_path / "summary.md"
        summary.write_text("prior step output\n")
        args = ["--baseline-dir", str(tmp_path), "--only", "fake", "--update"]
        assert regression.run_gate([*args, "--summary-out", str(summary)]) == 0
        assert summary.read_text().startswith("prior step output\n")
