"""Tests for repro.ml.tree (exact CART regression tree)."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeRegressor


def _step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 3))
    y = np.where(X[:, 0] > 0.0, 5.0, -5.0)
    return X, y


class TestDecisionTree:
    def test_learns_single_split_exactly(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert np.allclose(tree.predict(X), y)
        assert tree.depth == 1
        assert tree.n_leaves == 2

    def test_depth_zero_predicts_mean(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert np.allclose(tree.predict(X), y.mean())
        assert tree.n_leaves == 1

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        tree = DecisionTreeRegressor(max_depth=5).fit(X, np.full(30, 2.5))
        assert tree.n_leaves == 1
        assert np.allclose(tree.predict(X), 2.5)

    def test_min_samples_leaf_respected(self):
        X, y = _step_data(n=20)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=8).fit(X, y)

        def leaf_sizes(node, X, y):
            if node.is_leaf:
                return [y.size]
            mask = X[:, node.feature] <= node.threshold
            return leaf_sizes(node.left, X[mask], y[mask]) + leaf_sizes(
                node.right, X[~mask], y[~mask]
            )

        assert min(leaf_sizes(tree._root, X, y)) >= 8

    def test_deeper_trees_fit_train_better(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(300, 2))
        y = np.sin(X[:, 0] * 3) + X[:, 1] ** 2
        errs = []
        for depth in (1, 3, 6):
            tree = DecisionTreeRegressor(max_depth=depth).fit(X, y)
            errs.append(np.mean((tree.predict(X) - y) ** 2))
        assert errs[0] > errs[1] > errs[2]

    def test_prediction_in_target_range(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 4))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        pred = tree.predict(rng.normal(size=(50, 4)))
        assert pred.min() >= y.min() and pred.max() <= y.max()

    def test_max_features_randomization_differs(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(120, 10))
        y = X @ rng.normal(size=10)
        p1 = DecisionTreeRegressor(max_depth=3, max_features=2, rng=1).fit(X, y).predict(X)
        p2 = DecisionTreeRegressor(max_depth=3, max_features=2, rng=2).fit(X, y).predict(X)
        assert not np.allclose(p1, p2)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))

    def test_wrong_width_raises(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.ones((2, 5)))

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((5, 2)), np.ones(4))

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_tied_feature_values_no_split(self):
        X = np.ones((10, 1))
        y = np.arange(10.0)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.n_leaves == 1
        assert tree.predict(X)[0] == pytest.approx(4.5)
