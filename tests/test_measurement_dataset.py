"""Tests for the measurement harness and the latency dataset."""

import numpy as np
import pytest

from repro.dataset.collection import collect_dataset
from repro.dataset.dataset import LatencyDataset
from repro.devices.catalog import build_fleet
from repro.devices.latency import LatencyModel
from repro.devices.measurement import MeasurementHarness
from repro.generator.zoo import ZOO_BUILDERS
from repro.nnir.flops import network_work


class TestMeasurementHarness:
    def test_thirty_runs_by_default(self):
        harness = MeasurementHarness(seed=0)
        device = build_fleet(2, seed=0)[0]
        runs = harness.run_latencies_ms(device, ZOO_BUILDERS["mobilenet_v3_small"]())
        assert runs.shape == (30,)
        assert (runs > 0).all()

    def test_measurement_reproducible(self):
        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v3_small"]()
        a = MeasurementHarness(seed=5).measure_ms(device, net)
        b = MeasurementHarness(seed=5).measure_ms(device, net)
        assert a == b

    def test_different_seed_changes_noise(self):
        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v3_small"]()
        a = MeasurementHarness(seed=5).measure_ms(device, net)
        b = MeasurementHarness(seed=6).measure_ms(device, net)
        assert a != b

    def test_mean_close_to_noise_free_model(self):
        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        base = LatencyModel().network_latency_ms(device, net)
        measured = MeasurementHarness(seed=0).measure_ms(device, net)
        assert measured == pytest.approx(base, rel=0.15)

    def test_zero_jitter_no_spikes_equals_model(self):
        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        harness = MeasurementHarness(jitter_sigma=0.0, spike_probability=0.0, seed=0)
        assert harness.measure_ms(device, net) == pytest.approx(
            LatencyModel().network_latency_ms(device, net)
        )

    def test_work_requires_name(self):
        device = build_fleet(2, seed=0)[0]
        work = network_work(ZOO_BUILDERS["mobilenet_v3_small"]())
        harness = MeasurementHarness(seed=0)
        with pytest.raises(ValueError, match="network_name"):
            harness.measure_ms(device, work)
        assert harness.measure_ms(device, work, "mobilenet_v3_small") > 0

    def test_work_and_network_paths_agree(self):
        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v3_small"]()
        harness = MeasurementHarness(seed=0)
        via_net = harness.measure_ms(device, net)
        via_work = harness.measure_ms(device, network_work(net), net.name)
        assert via_net == via_work

    def test_explicit_name_wins_over_network_name(self):
        # Regression: an explicit network_name used to be silently
        # discarded for Network inputs, so the caller got the wrong
        # noise stream.
        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v3_small"]()
        harness = MeasurementHarness(seed=0)
        via_alias = harness.run_latencies_ms(device, net, "custom_stream")
        via_work = harness.run_latencies_ms(device, network_work(net), "custom_stream")
        assert np.array_equal(via_alias, via_work)
        assert not np.array_equal(via_alias, harness.run_latencies_ms(device, net))

    def test_explicit_name_scalar_batch_identical(self):
        from repro.devices.latency import compile_works

        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v3_small"]()
        harness = MeasurementHarness(seed=0)
        compiled = compile_works([network_work(net)])
        row = harness.measure_row_ms(device, compiled, ["custom_stream"])
        assert row[0] == harness.measure_ms(device, net, "custom_stream")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MeasurementHarness(runs=0)
        with pytest.raises(ValueError):
            MeasurementHarness(jitter_sigma=-0.1)
        with pytest.raises(ValueError):
            MeasurementHarness(spike_probability=1.5)
        with pytest.raises(ValueError):
            MeasurementHarness(spike_scale=0.5)
        with pytest.raises(ValueError, match="aggregate"):
            MeasurementHarness(aggregate="mode")


class TestAggregationProtocols:
    def test_explicit_mean_is_byte_identical_to_default(self):
        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v3_small"]()
        default = MeasurementHarness(seed=0).measure_ms(device, net)
        explicit = MeasurementHarness(seed=0, aggregate="mean").measure_ms(device, net)
        assert default == explicit

    def test_robust_aggregates_match_run_level_reference(self):
        from repro.trust import robust_aggregate

        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v3_small"]()
        runs = MeasurementHarness(seed=0).run_latencies_ms(device, net)
        for method in ("median", "trimmed", "huber"):
            harness = MeasurementHarness(seed=0, aggregate=method)
            assert harness.measure_ms(device, net) == robust_aggregate(runs, method)

    def test_row_path_applies_aggregate_per_cell(self):
        from repro.devices.latency import compile_works
        from repro.nnir.flops import network_work

        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v3_small"]()
        compiled = compile_works([network_work(net)])
        mean_row = MeasurementHarness(seed=0).measure_row_ms(
            device, compiled, [net.name]
        )
        explicit = MeasurementHarness(seed=0, aggregate="mean").measure_row_ms(
            device, compiled, [net.name]
        )
        assert np.array_equal(mean_row, explicit)  # byte-identical default
        for method in ("median", "trimmed", "huber"):
            harness = MeasurementHarness(seed=0, aggregate=method)
            row = harness.measure_row_ms(device, compiled, [net.name])
            # Scalar and row paths accumulate floats in different
            # orders (pre-existing, aggregate-independent), so parity
            # is to the last ulp rather than exact.
            assert row[0] == pytest.approx(harness.measure_ms(device, net), rel=1e-12)
            assert row[0] != mean_row[0]

    def test_median_resists_spikes_better_than_mean(self):
        # Heavy spike contamination pulls the mean up; the median stays
        # near the noise-free model latency.
        device = build_fleet(2, seed=0)[0]
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        base = LatencyModel().network_latency_ms(device, net)
        kwargs = dict(seed=0, spike_probability=0.3, spike_scale=10.0)
        mean_est = MeasurementHarness(**kwargs).measure_ms(device, net)
        median_est = MeasurementHarness(aggregate="median", **kwargs).measure_ms(
            device, net
        )
        assert abs(median_est - base) < abs(mean_est - base)

    def test_campaign_with_robust_aggregate_deterministic(
        self, small_suite, small_fleet
    ):
        harness = MeasurementHarness(seed=0, aggregate="median")
        a = collect_dataset(small_suite, small_fleet, harness)
        b = collect_dataset(small_suite, small_fleet, harness)
        assert np.array_equal(a.latencies_ms, b.latencies_ms)

    def test_aggregate_joins_cache_key_only_when_non_default(self):
        from repro.pipeline import campaign_config

        base = dict(seed=0, n_random_networks=2, n_devices=4)
        mean_cfg = campaign_config(harness=MeasurementHarness(seed=0), **base)
        assert "aggregate" not in mean_cfg["harness"]
        median_cfg = campaign_config(
            harness=MeasurementHarness(seed=0, aggregate="median"), **base
        )
        assert median_cfg["harness"]["aggregate"] == "median"
        assert mean_cfg != median_cfg


class TestLatencyDataset:
    def _dataset(self):
        return LatencyDataset(
            np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]),
            ["dev_a", "dev_b"],
            ["net_x", "net_y", "net_z"],
        )

    def test_basic_accessors(self):
        ds = self._dataset()
        assert ds.n_devices == 2 and ds.n_networks == 3 and ds.n_points == 6
        assert ds.latency("dev_b", "net_y") == 5.0
        assert ds.device_vector("dev_a").tolist() == [1.0, 2.0, 3.0]
        assert ds.network_vector("net_z").tolist() == [3.0, 6.0]

    def test_unknown_names_raise(self):
        ds = self._dataset()
        with pytest.raises(KeyError):
            ds.latency("nope", "net_x")
        with pytest.raises(KeyError):
            ds.latency("dev_a", "nope")

    def test_select_devices(self):
        ds = self._dataset().select_devices([1])
        assert ds.device_names == ["dev_b"]
        assert ds.latencies_ms.tolist() == [[4.0, 5.0, 6.0]]

    def test_select_networks_order(self):
        ds = self._dataset().select_networks([2, 0])
        assert ds.network_names == ["net_z", "net_x"]
        assert ds.latencies_ms[0].tolist() == [3.0, 1.0]

    def test_vectors_are_copies(self):
        ds = self._dataset()
        v = ds.device_vector("dev_a")
        v[0] = 999.0
        assert ds.latency("dev_a", "net_x") == 1.0

    def test_save_load_roundtrip(self, tmp_path):
        ds = self._dataset()
        path = tmp_path / "ds.npz"
        ds.save(path)
        loaded = LatencyDataset.load(path)
        assert loaded.device_names == ds.device_names
        assert loaded.network_names == ds.network_names
        assert np.array_equal(loaded.latencies_ms, ds.latencies_ms)

    def test_summary(self):
        summary = self._dataset().summary()
        assert summary["min_ms"] == 1.0 and summary["max_ms"] == 6.0
        assert summary["n_points"] == 6

    @pytest.mark.parametrize(
        "matrix,devices,networks",
        [
            (np.ones((2, 2)), ["a"], ["x", "y"]),  # shape mismatch
            (np.ones(4), ["a"], ["x"]),  # not 2-D
            (np.array([[1.0, -1.0]]), ["a"], ["x", "y"]),  # non-positive
            (np.array([[1.0, np.inf]]), ["a"], ["x", "y"]),  # infinite
            (np.ones((2, 2)), ["a", "a"], ["x", "y"]),  # dup devices
            (np.ones((2, 2)), ["a", "b"], ["x", "x"]),  # dup networks
        ],
    )
    def test_validation(self, matrix, devices, networks):
        with pytest.raises(ValueError):
            LatencyDataset(matrix, devices, networks)


class TestMissingCells:
    def _dataset(self):
        return LatencyDataset(
            np.array(
                [[1.0, 2.0, 3.0], [np.nan, np.nan, np.nan], [4.0, np.nan, 6.0]]
            ),
            ["dev_a", "dev_b", "dev_c"],
            ["net_x", "net_y", "net_z"],
        )

    def test_missing_accounting(self):
        ds = self._dataset()
        assert ds.n_missing == 4
        assert ds.missing_mask.tolist() == [
            [False, False, False],
            [True, True, True],
            [False, True, False],
        ]
        completeness = ds.device_completeness()
        assert completeness["dev_a"] == 1.0
        assert completeness["dev_b"] == 0.0
        assert completeness["dev_c"] == pytest.approx(2 / 3)
        assert ds.complete_device_names() == ["dev_a"]

    def test_completeness_on_empty_network_axis(self):
        # Legal after a selection step strips every network: the
        # per-device fraction is undefined, so the dict is empty and no
        # mean-of-empty-slice RuntimeWarning escapes.
        import warnings

        ds = LatencyDataset(np.empty((2, 0)), ["dev_a", "dev_b"], [])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ds.device_completeness() == {}
        assert ds.complete_device_names() == ["dev_a", "dev_b"]

    def test_drop_incomplete_devices(self):
        ds = self._dataset().drop_incomplete_devices()
        assert ds.device_names == ["dev_a"]
        all_nan = LatencyDataset(
            np.full((2, 2), np.nan), ["a", "b"], ["x", "y"]
        )
        with pytest.raises(ValueError, match="missing"):
            all_nan.drop_incomplete_devices()

    def test_summary_over_observed_cells_only(self):
        summary = self._dataset().summary()
        assert summary["n_missing"] == 4.0
        assert summary["min_ms"] == 1.0 and summary["max_ms"] == 6.0
        with pytest.raises(ValueError, match="no observed"):
            LatencyDataset(np.full((1, 2), np.nan), ["a"], ["x", "y"]).summary()

    def test_save_load_nan_roundtrip(self, tmp_path):
        ds = self._dataset()
        ds.save(tmp_path / "ds.npz")
        loaded = LatencyDataset.load(tmp_path / "ds.npz")
        assert np.array_equal(loaded.latencies_ms, ds.latencies_ms, equal_nan=True)

    def test_observed_cells_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            LatencyDataset(
                np.array([[np.nan, -1.0]]), ["a"], ["x", "y"]
            )


class TestCollection:
    def test_collects_full_matrix(self, small_suite, small_fleet, small_dataset):
        assert small_dataset.n_devices == len(small_fleet)
        assert small_dataset.n_networks == len(small_suite)
        assert small_dataset.device_names == small_fleet.names
        assert small_dataset.network_names == small_suite.names

    def test_collection_matches_pointwise_measurement(
        self, small_suite, small_fleet, small_dataset
    ):
        harness = MeasurementHarness(seed=0)
        device = small_fleet[3]
        net = small_suite["fbnet_c"]
        assert small_dataset.latency(device.name, "fbnet_c") == pytest.approx(
            harness.measure_ms(device, net)
        )

    def test_collection_deterministic(self, small_suite, small_fleet, small_dataset):
        again = collect_dataset(small_suite, small_fleet, MeasurementHarness(seed=0))
        assert np.array_equal(again.latencies_ms, small_dataset.latencies_ms)
