"""Tests for the operator taxonomy: shapes, params, work decomposition."""

import numpy as np
import pytest

from repro.nnir.ops import (
    Activation,
    Add,
    AvgPool2d,
    ComputeKind,
    Concat,
    Conv2d,
    DepthwiseConv2d,
    Fire,
    Flatten,
    GlobalAvgPool,
    InvertedBottleneck,
    Linear,
    MaxPool2d,
    PARAM_SLOTS,
    ShuffleUnit,
    SqueezeExcite,
    TensorShape,
)

S32 = TensorShape(32, 56, 56)


class TestTensorShape:
    def test_numel(self):
        assert TensorShape(3, 4, 5).numel == 60

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            TensorShape(0, 1, 1)


class TestConv2d:
    def test_shape_same_padding(self):
        conv = Conv2d(32, 64, kernel=3, stride=1, padding=1)
        assert conv.out_shape((S32,)) == TensorShape(64, 56, 56)

    def test_shape_stride_two(self):
        conv = Conv2d(32, 64, kernel=3, stride=2, padding=1)
        assert conv.out_shape((S32,)) == TensorShape(64, 28, 28)

    def test_macs_formula(self):
        conv = Conv2d(32, 64, kernel=3, stride=1, padding=1)
        (work,) = conv.primitives((S32,))
        assert work.macs == 3 * 3 * 32 * 64 * 56 * 56

    def test_param_count_includes_bias(self):
        conv = Conv2d(8, 16, kernel=3)
        assert conv.param_count((TensorShape(8, 10, 10),)) == 3 * 3 * 8 * 16 + 16

    def test_pointwise_classified_as_conv_pw(self):
        conv = Conv2d(32, 64, kernel=1, padding=0)
        (work,) = conv.primitives((S32,))
        assert work.kind is ComputeKind.CONV_PW

    def test_spatial_classified_as_conv_std(self):
        (work,) = Conv2d(32, 64, kernel=3).primitives((S32,))
        assert work.kind is ComputeKind.CONV_STD

    def test_grouped_macs_divided(self):
        dense = Conv2d(32, 64, kernel=3).primitives((S32,))[0].macs
        grouped = Conv2d(32, 64, kernel=3, groups=4).primitives((S32,))[0].macs
        assert grouped == dense // 4

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="input channels"):
            Conv2d(16, 32).out_shape((S32,))

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError):
            Conv2d(3, 8, kernel=9, padding=0).out_shape((TensorShape(3, 4, 4),))

    def test_groups_must_divide(self):
        with pytest.raises(ValueError):
            Conv2d(30, 64, groups=4)


class TestDepthwiseConv:
    def test_shape_preserves_channels(self):
        dw = DepthwiseConv2d(32, kernel=3, stride=2, padding=1)
        assert dw.out_shape((S32,)) == TensorShape(32, 28, 28)

    def test_macs_linear_in_channels(self):
        (work,) = DepthwiseConv2d(32, 3, 1, 1).primitives((S32,))
        assert work.macs == 3 * 3 * 32 * 56 * 56
        assert work.kind is ComputeKind.CONV_DW

    def test_low_arithmetic_intensity_vs_dense(self):
        dw = DepthwiseConv2d(32, 3, 1, 1).primitives((S32,))[0]
        dense = Conv2d(32, 32, 3, 1, 1).primitives((S32,))[0]
        assert dw.arithmetic_intensity < dense.arithmetic_intensity


class TestLinear:
    def test_shape_and_macs(self):
        fc = Linear(128, 10)
        shape = TensorShape(128)
        assert fc.out_shape((shape,)) == TensorShape(10)
        (work,) = fc.primitives((shape,))
        assert work.macs == 1280
        assert work.kind is ComputeKind.GEMM

    def test_feature_mismatch_raises(self):
        with pytest.raises(ValueError):
            Linear(100, 10).out_shape((TensorShape(128),))


class TestPoolingAndActivations:
    def test_maxpool_shape(self):
        assert MaxPool2d(2, 2, 0).out_shape((S32,)) == TensorShape(32, 28, 28)

    def test_avgpool_zero_params(self):
        assert AvgPool2d().param_count((S32,)) == 0

    def test_global_pool_collapses_spatial(self):
        assert GlobalAvgPool().out_shape((S32,)) == TensorShape(32, 1, 1)

    def test_activation_preserves_shape(self):
        for fn in ("relu", "relu6", "hswish", "sigmoid"):
            assert Activation(fn).out_shape((S32,)) == S32

    def test_hswish_costlier_than_relu(self):
        relu = Activation("relu").primitives((S32,))[0].macs
        hswish = Activation("hswish").primitives((S32,))[0].macs
        assert hswish > relu

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            Activation("gelu")

    def test_activation_kind_tracks_fn(self):
        assert Activation("relu").kind.value == "relu"
        assert Activation("hswish").kind.value == "hswish"


class TestStructuralOps:
    def test_add_requires_matching_shapes(self):
        assert Add().out_shape((S32, S32)) == S32
        with pytest.raises(ValueError):
            Add().out_shape((S32, TensorShape(16, 56, 56)))

    def test_add_arity_enforced(self):
        with pytest.raises(ValueError):
            Add().out_shape((S32,))

    def test_concat_stacks_channels(self):
        out = Concat().out_shape((S32, TensorShape(16, 56, 56)))
        assert out == TensorShape(48, 56, 56)

    def test_concat_spatial_mismatch_raises(self):
        with pytest.raises(ValueError):
            Concat().out_shape((S32, TensorShape(16, 28, 28)))

    def test_concat_has_zero_macs(self):
        (work,) = Concat().primitives((S32, S32))
        assert work.macs == 0 and work.input_bytes > 0

    def test_flatten(self):
        assert Flatten().out_shape((S32,)) == TensorShape(32 * 56 * 56)
        assert Flatten().primitives((S32,)) == []


class TestSqueezeExcite:
    def test_shape_preserved(self):
        assert SqueezeExcite(32).out_shape((S32,)) == S32

    def test_params_two_fc_layers(self):
        se = SqueezeExcite(32, reduction=4)
        expected = 32 * 8 + 8 + 8 * 32 + 32
        assert se.param_count((S32,)) == expected

    def test_decomposes_into_four_primitives(self):
        kinds = [p.kind for p in SqueezeExcite(32).primitives((S32,))]
        assert kinds == [
            ComputeKind.POOL,
            ComputeKind.GEMM,
            ComputeKind.GEMM,
            ComputeKind.ELEMENTWISE,
        ]


class TestInvertedBottleneck:
    def test_shape(self):
        ib = InvertedBottleneck(32, 64, expansion=6, kernel=3, stride=2)
        assert ib.out_shape((S32,)) == TensorShape(64, 28, 28)

    def test_residual_condition(self):
        assert InvertedBottleneck(32, 32, stride=1).has_residual
        assert not InvertedBottleneck(32, 64, stride=1).has_residual
        assert not InvertedBottleneck(32, 32, stride=2).has_residual

    def test_expansion_one_skips_expand_conv(self):
        thin = InvertedBottleneck(32, 32, expansion=1)
        wide = InvertedBottleneck(32, 32, expansion=6)
        pw_thin = sum(1 for p in thin.primitives((S32,)) if p.kind is ComputeKind.CONV_PW)
        pw_wide = sum(1 for p in wide.primitives((S32,)) if p.kind is ComputeKind.CONV_PW)
        assert pw_wide == pw_thin + 1

    def test_se_adds_gemm_primitives(self):
        plain = InvertedBottleneck(32, 32, use_se=False).primitives((S32,))
        with_se = InvertedBottleneck(32, 32, use_se=True).primitives((S32,))
        gemms = lambda ps: sum(1 for p in ps if p.kind is ComputeKind.GEMM)
        assert gemms(with_se) == gemms(plain) + 2

    def test_macs_match_manual_decomposition(self):
        ib = InvertedBottleneck(32, 64, expansion=6, kernel=3, stride=1)
        hidden = 192
        expand = 32 * hidden * 56 * 56
        dw = 3 * 3 * hidden * 56 * 56
        project = hidden * 64 * 56 * 56
        conv_macs = sum(
            p.macs
            for p in ib.primitives((S32,))
            if p.kind in (ComputeKind.CONV_PW, ComputeKind.CONV_DW)
        )
        assert conv_macs == expand + dw + project

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            InvertedBottleneck(32, 64, stride=3)
        with pytest.raises(ValueError):
            InvertedBottleneck(32, 64, kernel=4)
        with pytest.raises(ValueError):
            InvertedBottleneck(32, 64, expansion=0)


class TestFire:
    def test_output_channels_doubled_expand(self):
        fire = Fire(64, 16, 64)
        out = fire.out_shape((TensorShape(64, 28, 28),))
        assert out == TensorShape(128, 28, 28)

    def test_param_count_matches_three_convs(self):
        fire = Fire(64, 16, 64)
        expected = (64 * 16 + 16) + (16 * 64 + 64) + (3 * 3 * 16 * 64 + 64)
        assert fire.param_count((TensorShape(64, 28, 28),)) == expected


class TestShuffleUnit:
    def test_stride1_preserves_shape(self):
        unit = ShuffleUnit(116, 116, stride=1)
        s = TensorShape(116, 28, 28)
        assert unit.out_shape((s,)) == s

    def test_stride2_downsamples(self):
        unit = ShuffleUnit(24, 116, stride=2)
        assert unit.out_shape((TensorShape(24, 56, 56),)) == TensorShape(116, 28, 28)

    def test_stride1_channel_change_rejected(self):
        with pytest.raises(ValueError):
            ShuffleUnit(24, 116, stride=1)

    def test_has_depthwise_work(self):
        unit = ShuffleUnit(116, 116, stride=1)
        kinds = {p.kind for p in unit.primitives((TensorShape(116, 28, 28),))}
        assert ComputeKind.CONV_DW in kinds and ComputeKind.CONV_PW in kinds


class TestParamFeatures:
    @pytest.mark.parametrize(
        "op,shape",
        [
            (Conv2d(32, 64), S32),
            (DepthwiseConv2d(32), S32),
            (Linear(128, 10), TensorShape(128)),
            (MaxPool2d(), S32),
            (GlobalAvgPool(), S32),
            (Activation("relu"), S32),
            (Flatten(), S32),
            (SqueezeExcite(32), S32),
            (InvertedBottleneck(32, 64), S32),
            (Fire(32, 8, 32), S32),
            (ShuffleUnit(32, 32), S32),
        ],
    )
    def test_every_op_emits_fixed_slots(self, op, shape):
        features = op.param_features((shape,) * op.arity)
        assert len(features) == PARAM_SLOTS
        assert all(np.isfinite(features))
