"""Tests for the desktop/server fleet extension."""

import numpy as np
import pytest

from repro.devices.desktop import DESKTOP_CHIPSETS, DESKTOP_CORES, build_desktop_fleet
from repro.devices.catalog import build_fleet
from repro.devices.latency import LatencyModel
from repro.generator.zoo import ZOO_BUILDERS


class TestDesktopCatalog:
    def test_cores_and_chipsets_consistent(self):
        for _, family, *_ in DESKTOP_CHIPSETS:
            assert family in DESKTOP_CORES

    def test_fleet_size_and_uniqueness(self):
        fleet = build_desktop_fleet(20, seed=0)
        assert len(fleet) == 20
        assert len(set(fleet.names)) == 20

    def test_deterministic(self):
        a = build_desktop_fleet(8, seed=1)
        b = build_desktop_fleet(8, seed=1)
        assert a.names == b.names
        assert a[3].sw_efficiency == b[3].sw_efficiency

    def test_covers_all_chipsets_when_large_enough(self):
        fleet = build_desktop_fleet(16, seed=0)
        assert len(fleet.chipset_histogram()) == len(DESKTOP_CHIPSETS)

    def test_desktop_hidden_state_is_milder(self):
        for device in build_desktop_fleet(20, seed=0):
            assert device.governor_factor >= 0.85
            assert device.thermal_factor <= 1.4

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            build_desktop_fleet(0)


class TestDesktopLatency:
    def test_desktops_faster_than_typical_phones(self):
        model = LatencyModel()
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        desktop = build_desktop_fleet(10, seed=0)
        mobile = build_fleet(20, seed=0)
        desk_median = np.median([model.network_latency_ms(d, net) for d in desktop])
        mob_median = np.median([model.network_latency_ms(d, net) for d in mobile])
        assert desk_median < mob_median

    def test_vnni_server_beats_sse_era_core(self):
        model = LatencyModel()
        net = ZOO_BUILDERS["mobilenet_v2_1.0"]()
        from repro.devices.device import Device

        def dev(family, freq):
            return Device(
                name="x", chipset="c", frequency_ghz=freq, dram_gb=32,
                core=DESKTOP_CORES[family], dram_bw_gbps=30.0,
            )

        icl = model.network_latency_ms(dev("Ice Lake", 3.5), net)
        sky = model.network_latency_ms(dev("Skylake", 3.5), net)
        assert icl < sky
