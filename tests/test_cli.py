"""Tests for the command-line interface.

The CLI runs against a small cached artifact set (built once per
module) by pointing ``--cache-dir`` at a temp directory and monkey-
patching the artifact scale.
"""

import pytest

import repro.cli as cli
import repro.pipeline as pipeline


@pytest.fixture(scope="module")
def small_cli(tmp_path_factory, request):
    """Run the CLI against small artifacts via a patched builder."""
    cache = tmp_path_factory.mktemp("cli-cache")
    original = pipeline.build_paper_artifacts

    def small_builder(
        *, seed=0, cache_dir=None, fault_plan=None, adversary_plan=None,
        harness=None, retry_policy=None, resume=False, **kwargs,
    ):
        return original(
            seed=seed, n_random_networks=8, n_devices=16, cache_dir=cache,
            fault_plan=fault_plan, adversary_plan=adversary_plan,
            harness=harness, retry_policy=retry_policy, resume=resume,
        )

    cli.build_paper_artifacts = small_builder
    request.addfinalizer(lambda: setattr(cli, "build_paper_artifacts", original))

    def run(argv):
        return cli.main(argv)

    return run


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_defaults(self):
        args = cli.build_parser().parse_args(["evaluate"])
        assert args.method == "mis"
        assert args.size == 10
        assert args.split_seed == 7

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["signature", "--method", "genetic"])

    def test_fault_flags_parsed(self):
        args = cli.build_parser().parse_args(
            ["--faults", "dropout=0.1", "--max-retries", "5", "--resume", "build"]
        )
        assert args.faults == "dropout=0.1"
        assert args.max_retries == 5
        assert args.resume is True

    def test_regressor_seed_flag(self):
        args = cli.build_parser().parse_args(
            ["collaborate", "--regressor-seed", "9"]
        )
        assert args.regressor_seed == 9


class TestCommands:
    def test_build(self, small_cli, capsys, tmp_path):
        out = tmp_path / "ds.npz"
        assert small_cli(["build", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "suite" in captured and "measurements" in captured
        assert out.exists()

    def test_eda(self, small_cli, capsys):
        assert small_cli(["eda"]) == 0
        captured = capsys.readouterr().out
        assert "fast" in captured and "giant" in captured

    def test_eda_unknown_network(self, small_cli, capsys):
        assert small_cli(["eda", "--network", "nope"]) == 2

    def test_signature(self, small_cli, capsys):
        assert small_cli(["signature", "--method", "sccs", "--size", "3"]) == 0
        captured = capsys.readouterr().out
        assert "SCCS signature set (size 3)" in captured
        assert "MMACs" in captured

    def test_evaluate(self, small_cli, capsys):
        assert small_cli(["evaluate", "--method", "rs", "--size", "3"]) == 0
        captured = capsys.readouterr().out
        assert "test R^2" in captured

    def test_collaborate(self, small_cli, capsys):
        assert small_cli(
            ["collaborate", "--fraction", "0.3", "--iterations", "6", "--every", "3"]
        ) == 0
        captured = capsys.readouterr().out
        assert "avg R^2" in captured

    def test_collaborate_incremental(self, small_cli, capsys):
        argv = ["collaborate", "--fraction", "0.3", "--iterations", "6",
                "--every", "3"]
        assert small_cli(argv) == 0
        base = capsys.readouterr().out
        assert small_cli(
            [*argv, "--incremental", "--incremental-trees", "5",
             "--incremental-min-devices", "3",
             "--incremental-refresh-factor", "4.0"]
        ) == 0
        warm = capsys.readouterr().out
        assert "avg R^2" in warm
        # The warm-started approximation diverges from the full retrain
        # once warm checkpoints begin.
        assert warm != base

    def test_predict_known_pair(self, small_cli, capsys):
        assert small_cli(
            ["predict", "--network", "mobilenet_v3_small",
             "--device", "redmi_note_5_pro", "--size", "3"]
        ) == 0
        captured = capsys.readouterr().out
        assert "predicted" in captured and "measured" in captured

    def test_predict_unknown_network(self, small_cli):
        assert small_cli(
            ["predict", "--network", "nope", "--device", "redmi_note_5_pro"]
        ) == 2

    def test_predict_unknown_device(self, small_cli):
        assert small_cli(
            ["predict", "--network", "mobilenet_v3_small", "--device", "nope"]
        ) == 2


class TestFaultFlags:
    def test_build_with_faults_reports_missing(self, small_cli, capsys):
        assert small_cli(["--faults", "seed=1,dropout=0.5", "build"]) == 0
        captured = capsys.readouterr().out
        assert "missing" in captured and "quarantined" in captured

    def test_bad_fault_spec_is_a_usage_error(self, small_cli, capsys):
        assert small_cli(["--faults", "explode=1", "build"]) == 2
        assert "unknown fault spec key" in capsys.readouterr().err

    def test_resume_with_no_cache_rejected(self, small_cli, capsys):
        assert small_cli(["--resume", "--no-cache", "build"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_collaborate_regressor_seed_changes_scores(self, small_cli, capsys):
        argv = ["collaborate", "--fraction", "0.3", "--iterations", "4",
                "--every", "4"]
        assert small_cli(argv) == 0
        base = capsys.readouterr().out
        assert small_cli([*argv, "--regressor-seed", "9"]) == 0
        reseeded = capsys.readouterr().out
        assert base != reseeded


class TestAdversaryFlags:
    def test_parser_accepts_adversary_and_aggregate_flags(self):
        args = cli.build_parser().parse_args(
            ["--adversaries", "seed=7,fraction=0.2", "--aggregate", "median",
             "collaborate", "--admission"]
        )
        assert args.adversaries == "seed=7,fraction=0.2"
        assert args.aggregate == "median"
        assert args.admission is True

    def test_invalid_aggregate_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["--aggregate", "mode", "build"])

    def test_bad_adversary_spec_is_a_usage_error(self, small_cli, capsys):
        assert small_cli(["--adversaries", "explode=1", "build"]) == 2
        assert "unknown adversary spec key" in capsys.readouterr().err

    def test_collaborate_with_admission_reports_summary(self, small_cli, capsys):
        argv = ["--adversaries", "seed=7,fraction=0.25,unit_scale=1",
                "collaborate", "--fraction", "0.3", "--iterations", "6",
                "--every", "3", "--admission"]
        assert small_cli(argv) == 0
        captured = capsys.readouterr().out
        assert "admission :" in captured and "accepted" in captured

    def test_clean_admission_run_matches_default(self, small_cli, capsys):
        argv = ["collaborate", "--fraction", "0.3", "--iterations", "6",
                "--every", "3"]
        assert small_cli(argv) == 0
        base = capsys.readouterr().out
        assert small_cli([*argv, "--admission"]) == 0
        screened = capsys.readouterr().out
        # Identical curve lines; the screened run adds a summary line.
        assert all(line in screened for line in base.strip().splitlines())
        assert "admission :" in screened

    def test_build_with_robust_aggregate(self, small_cli, capsys):
        assert small_cli(["--aggregate", "median", "build"]) == 0
        assert "measurements" in capsys.readouterr().out


class TestTelemetry:
    def test_collect_alias_writes_jsonl_report(self, small_cli, capsys, tmp_path):
        import json

        from repro import telemetry

        out = tmp_path / "report.jsonl"
        try:
            assert small_cli(["--telemetry-out", str(out), "collect"]) == 0
        finally:
            telemetry.disable()
            telemetry.registry().clear()
        captured = capsys.readouterr()
        assert "suite" in captured.out
        assert str(out) in captured.err
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        summary = lines[-1]
        assert summary["type"] == "summary"
        assert "total" in summary["stages"]
        assert set(summary["cache"]) == {
            "hits", "misses_cold", "misses_corrupt", "stores", "hit_rate",
        }
        assert "utilization" in summary["executor"]

    def test_train_path_counters_in_report(self, small_cli, tmp_path):
        import json

        from repro import telemetry
        from repro.core.representation import clear_suite_memo

        out = tmp_path / "train_report.jsonl"
        try:
            clear_suite_memo()
            assert small_cli(
                ["--telemetry-out", str(out),
                 "evaluate", "--method", "rs", "--size", "3"]
            ) == 0
        finally:
            telemetry.disable()
            telemetry.registry().clear()
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        counters = {line["name"] for line in lines if line["type"] == "counter"}
        histograms = {line["name"] for line in lines if line["type"] == "histogram"}
        # The quantize-once training path instruments encoder/binning
        # reuse, fit wall time, and batched inference wall time.
        assert counters & {"train.bin_reuse_hits", "train.bin_reuse_misses"}
        assert "train.fit_ms" in histograms
        assert "predict.batched_ms" in histograms

    def test_no_report_without_flag(self, small_cli, tmp_path, capsys):
        from repro import telemetry

        assert small_cli(["build"]) == 0
        assert not telemetry.enabled()
        assert "telemetry report" not in capsys.readouterr().err

    def test_parser_accepts_collect_alias(self):
        args = cli.build_parser().parse_args(["collect"])
        assert args.command == "collect"
        assert args.telemetry_out is None
