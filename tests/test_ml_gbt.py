"""Tests for repro.ml.gbt (XGBoost-style gradient boosting)."""

import numpy as np
import pytest

from repro.ml.gbt import GradientBoostedTrees, _apply_bin_edges, _fit_bin_edges
from repro.ml.metrics import r2_score


def _friedman(n, seed=0):
    """A standard nonlinear regression benchmark."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 10))
    y = (
        10 * np.sin(np.pi * X[:, 0] * X[:, 1])
        + 20 * (X[:, 2] - 0.5) ** 2
        + 10 * X[:, 3]
        + 5 * X[:, 4]
        + rng.normal(0, 0.5, n)
    )
    return X, y


class TestBinning:
    def test_codes_monotone_in_value(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        edges = _fit_bin_edges(X, 8)
        codes = _apply_bin_edges(X, edges)
        assert np.all(np.diff(codes[:, 0].astype(int)) >= 0)
        assert codes.max() <= 7

    def test_constant_column_single_bin(self):
        X = np.ones((50, 1))
        edges = _fit_bin_edges(X, 16)
        codes = _apply_bin_edges(X, edges)
        assert np.all(codes == 0)

    def test_few_distinct_values_few_bins(self):
        X = np.repeat([[0.0], [1.0], [2.0]], 20, axis=0)
        edges = _fit_bin_edges(X, 64)
        codes = _apply_bin_edges(X, edges)
        assert len(np.unique(codes)) == 3


class TestGradientBoostedTrees:
    def test_fits_friedman_well(self):
        X, y = _friedman(2000)
        Xt, yt = _friedman(500, seed=1)
        model = GradientBoostedTrees(n_estimators=200, max_depth=4).fit(X, y)
        assert r2_score(yt, model.predict(Xt)) > 0.85

    def test_single_tree_beats_nothing(self):
        X, y = _friedman(500)
        model = GradientBoostedTrees(n_estimators=1, learning_rate=1.0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.2

    def test_training_rmse_decreases(self):
        X, y = _friedman(800)
        model = GradientBoostedTrees(n_estimators=50).fit(X, y)
        rmses = model.train_rmse_
        assert rmses[-1] < rmses[0]
        # Non-strict monotonicity: every step must not increase RMSE
        # (full-data squared-loss boosting guarantees this).
        assert all(b <= a + 1e-9 for a, b in zip(rmses, rmses[1:]))

    def test_deterministic_without_sampling(self):
        X, y = _friedman(300)
        p1 = GradientBoostedTrees(n_estimators=20, seed=1).fit(X, y).predict(X)
        p2 = GradientBoostedTrees(n_estimators=20, seed=2).fit(X, y).predict(X)
        assert np.allclose(p1, p2)

    def test_subsampling_seed_changes_model(self):
        X, y = _friedman(300)
        p1 = GradientBoostedTrees(n_estimators=20, subsample=0.5, seed=1).fit(X, y).predict(X)
        p2 = GradientBoostedTrees(n_estimators=20, subsample=0.5, seed=2).fit(X, y).predict(X)
        assert not np.allclose(p1, p2)

    def test_colsample_accuracy_holds(self):
        X, y = _friedman(1500)
        Xt, yt = _friedman(400, seed=2)
        full = GradientBoostedTrees(n_estimators=100).fit(X, y)
        sub = GradientBoostedTrees(n_estimators=100, colsample_bytree=0.4).fit(X, y)
        assert r2_score(yt, sub.predict(Xt)) > r2_score(yt, full.predict(Xt)) - 0.1

    def test_constant_target(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        model = GradientBoostedTrees(n_estimators=5).fit(X, np.full(50, 3.3))
        assert np.allclose(model.predict(X), 3.3)

    def test_constant_features_predict_mean(self):
        X = np.ones((40, 4))
        y = np.arange(40.0)
        model = GradientBoostedTrees(n_estimators=10).fit(X, y)
        assert np.allclose(model.predict(X), y.mean())

    def test_feature_importances_identify_signal(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(800, 6))
        y = 10 * X[:, 2] + 0.01 * rng.normal(size=800)
        model = GradientBoostedTrees(n_estimators=30).fit(X, y)
        assert model.feature_importances_ is not None
        assert np.argmax(model.feature_importances_) == 2
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_padding_columns_are_ignored(self):
        X, y = _friedman(600)
        padded = np.hstack([X, np.zeros((600, 50))])
        model = GradientBoostedTrees(n_estimators=30).fit(padded, y)
        assert model.feature_importances_ is not None
        assert model.feature_importances_[10:].sum() == 0.0

    def test_learning_rate_shrinkage(self):
        X, y = _friedman(500)
        fast = GradientBoostedTrees(n_estimators=5, learning_rate=0.5).fit(X, y)
        slow = GradientBoostedTrees(n_estimators=5, learning_rate=0.01).fit(X, y)
        # The low-lr model has barely moved from the base score.
        assert np.std(slow.predict(X)) < np.std(fast.predict(X))

    def test_reg_lambda_shrinks_leaf_values(self):
        X, y = _friedman(300)
        loose = GradientBoostedTrees(n_estimators=1, reg_lambda=0.0, learning_rate=1.0).fit(X, y)
        tight = GradientBoostedTrees(n_estimators=1, reg_lambda=100.0, learning_rate=1.0).fit(X, y)
        assert np.std(tight.predict(X)) < np.std(loose.predict(X))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.ones((1, 2)))

    def test_wrong_width_raises(self):
        X, y = _friedman(100)
        model = GradientBoostedTrees(n_estimators=2).fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.ones((2, 3)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_estimators": 0},
            {"learning_rate": 0.0},
            {"learning_rate": 1.5},
            {"max_depth": 0},
            {"subsample": 0.0},
            {"colsample_bytree": 1.5},
            {"max_bins": 1},
            {"max_bins": 300},
        ],
    )
    def test_invalid_hyperparams(self, kwargs):
        with pytest.raises(ValueError):
            GradientBoostedTrees(**kwargs)


class TestQuantizeOncePaths:
    """fit_binned / predict_binned / fit_more and their identity contracts."""

    def test_fit_binned_matches_fit(self):
        X, y = _friedman(600)
        Xt, _ = _friedman(200, seed=1)
        ref = GradientBoostedTrees(n_estimators=20, colsample_bytree=0.5).fit(X, y)
        edges = _fit_bin_edges(X, ref.max_bins)
        codes = _apply_bin_edges(X, edges)
        binned = GradientBoostedTrees(n_estimators=20, colsample_bytree=0.5)
        binned.fit_binned(codes, edges, y)
        assert np.array_equal(binned.predict(Xt), ref.predict(Xt))

    def test_matches_seed_implementation(self):
        from benchmarks.legacy_train import LegacyGradientBoostedTrees

        X, y = _friedman(500)
        Xt, _ = _friedman(150, seed=2)
        params = dict(n_estimators=25, max_depth=3, colsample_bytree=0.25, seed=3)
        legacy = LegacyGradientBoostedTrees(**params).fit(X, y)
        new = GradientBoostedTrees(**params).fit(X, y)
        assert np.array_equal(new.predict(Xt), legacy.predict(Xt))

    def test_predict_binned_matches_predict(self):
        X, y = _friedman(400)
        Xt, _ = _friedman(300, seed=4)
        model = GradientBoostedTrees(n_estimators=15).fit(X, y)
        codes = _apply_bin_edges(Xt, model.bin_edges)
        assert np.array_equal(model.predict_binned(codes), model.predict(Xt))

    def test_bin_edges_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GradientBoostedTrees().bin_edges

    def test_fit_binned_validates_codes(self):
        model = GradientBoostedTrees(n_estimators=2)
        y = np.ones(4)
        with pytest.raises(ValueError, match="uint8"):
            model.fit_binned(np.ones((4, 2)), [np.array([])] * 2, y)
        with pytest.raises(ValueError, match="edge array per feature"):
            model.fit_binned(np.ones((4, 2), dtype=np.uint8), [np.array([])], y)

    def test_fit_more_zero_is_noop(self):
        X, y = _friedman(300)
        model = GradientBoostedTrees(n_estimators=10).fit(X, y)
        before = model.predict(X)
        model.fit_more(X, y, 0)
        assert len(model._trees) == 10
        assert np.array_equal(model.predict(X), before)

    def test_fit_more_appends_and_improves_train_fit(self):
        X, y = _friedman(600)
        model = GradientBoostedTrees(n_estimators=10).fit(X, y)
        rmse_before = model.train_rmse_[-1]
        model.fit_more(X, y, 15)
        assert len(model._trees) == 25
        assert model.train_rmse_[-1] < rmse_before

    def test_fit_more_is_deterministic(self):
        X, y = _friedman(400)
        X2, y2 = _friedman(700, seed=5)
        Xt, _ = _friedman(100, seed=6)
        a = GradientBoostedTrees(n_estimators=8, colsample_bytree=0.5).fit(X, y)
        b = GradientBoostedTrees(n_estimators=8, colsample_bytree=0.5).fit(X, y)
        a.fit_more(X2, y2, 7)
        b.fit_more(X2, y2, 7)
        assert np.array_equal(a.predict(Xt), b.predict(Xt))

    def test_fit_more_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GradientBoostedTrees().fit_more(np.ones((2, 2)), np.ones(2), 5)

    def test_fit_more_rejects_negative(self):
        X, y = _friedman(100)
        model = GradientBoostedTrees(n_estimators=2).fit(X, y)
        with pytest.raises(ValueError, match=">= 0"):
            model.fit_more(X, y, -1)
