"""Tests for feature-importance attribution."""

import pytest

from repro.analysis.importance import importance_breakdown
from repro.core.cost_model import CostModel, default_regressor
from repro.core.representation import (
    NetworkEncoder,
    SignatureHardwareEncoder,
    StaticHardwareEncoder,
)


def _fit_signature_model(small_suite, small_dataset):
    encoder = NetworkEncoder(list(small_suite))
    sig_names = small_dataset.network_names[:4]
    hw = SignatureHardwareEncoder(sig_names)
    model = CostModel(encoder, hw, default_regressor(0))
    device_hw = {
        d: hw.encode_from_dataset(small_dataset, d)
        for d in small_dataset.device_names
    }
    targets = [n for n in small_dataset.network_names if n not in sig_names]
    X, y = model.build_training_set(
        small_dataset, small_suite, device_hw, network_names=targets
    )
    return model.fit(X, y), sig_names


class TestImportanceBreakdown:
    def test_shares_sum_to_one(self, small_suite, small_dataset):
        model, _ = _fit_signature_model(small_suite, small_dataset)
        breakdown = importance_breakdown(model)
        assert breakdown.network_share + breakdown.hardware_share == pytest.approx(
            1.0, abs=1e-9
        )

    def test_signature_features_named_and_ranked(self, small_suite, small_dataset):
        model, sig_names = _fit_signature_model(small_suite, small_dataset)
        breakdown = importance_breakdown(model)
        assert set(breakdown.hardware_features) == set(sig_names)
        values = list(breakdown.hardware_features.values())
        assert values == sorted(values, reverse=True)

    def test_signature_model_uses_hardware_features(self, small_suite, small_dataset):
        """Signature latencies should earn a large share of the gain —
        the mechanism behind Figure 9."""
        model, _ = _fit_signature_model(small_suite, small_dataset)
        breakdown = importance_breakdown(model)
        assert breakdown.hardware_share > 0.3

    def test_static_model_names_fields(self, small_suite, small_dataset, small_fleet):
        encoder = NetworkEncoder(list(small_suite))
        hw = StaticHardwareEncoder.from_devices(list(small_fleet))
        model = CostModel(encoder, hw, default_regressor(0))
        device_hw = {d.name: hw.encode(d) for d in small_fleet}
        X, y = model.build_training_set(small_dataset, small_suite, device_hw)
        model.fit(X, y)
        breakdown = importance_breakdown(model)
        assert "frequency_ghz" in breakdown.hardware_features
        assert any(k.startswith("cpu=") for k in breakdown.hardware_features)

    def test_unfitted_model_rejected(self, small_suite):
        encoder = NetworkEncoder(list(small_suite))
        model = CostModel(encoder, SignatureHardwareEncoder(["a"]))
        with pytest.raises(ValueError, match="not fitted"):
            importance_breakdown(model)

    def test_non_gbt_rejected(self, small_suite):
        from repro.ml.linear import RidgeRegression

        encoder = NetworkEncoder(list(small_suite))
        model = CostModel(encoder, SignatureHardwareEncoder(["a"]), RidgeRegression())
        with pytest.raises(TypeError, match="GradientBoostedTrees"):
            importance_breakdown(model)
