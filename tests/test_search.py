"""Evolutionary-search tests: space/mutation invariants, Pareto-front
properties, and the seed-determinism contract across executor backends."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.collaborative import CollaborativeRepository
from repro.search import (
    Candidate,
    EvolutionSpace,
    Genotype,
    MUTATION_KINDS,
    SearchConfig,
    accuracy_proxy,
    mutate,
    pareto_front,
    random_genotype,
    run_search,
)
from repro.serve import BulkQueryPlane, ModelRegistry, PredictionService


@pytest.fixture(scope="module")
def served(small_suite, small_dataset, tmp_path_factory):
    repo = CollaborativeRepository(
        small_dataset, small_suite, signature_size=5, seed=0
    )
    for device in small_dataset.device_names[:12]:
        repo.join(device, 0.5)
    registry = ModelRegistry(tmp_path_factory.mktemp("search-registry"))
    repo.publish_checkpoint(registry)
    service = PredictionService(
        registry, list(small_suite), dataset=small_dataset
    )
    yield SimpleNamespace(
        service=service, device=small_dataset.device_names[0]
    )
    service.close()


class TestSpace:
    def test_random_genotypes_respect_bounds(self):
        space = EvolutionSpace()
        rng = np.random.default_rng(0)
        for _ in range(50):
            g = random_genotype(space, rng)
            assert len(g.stage_widths) == space.n_stages
            for stage, (width, blocks) in enumerate(
                zip(g.stage_widths, g.blocks)
            ):
                assert width in space.channel_choices[stage]
                assert space.min_blocks <= len(blocks) <= space.max_blocks
                for expansion, kernel in blocks:
                    assert expansion in space.expansions
                    assert kernel in space.kernels

    def test_networks_fit_declared_depth(self):
        space = EvolutionSpace()
        rng = np.random.default_rng(1)
        for i in range(20):
            g = random_genotype(space, rng)
            net = g.to_network(space, f"n{i}")
            assert net.n_layers <= space.max_network_layers

    def test_mutations_stay_in_bounds_and_differ(self):
        space = EvolutionSpace()
        rng = np.random.default_rng(2)
        g = random_genotype(space, rng)
        kinds = set()
        for _ in range(200):
            child, kind = mutate(g, space, rng)
            assert kind in MUTATION_KINDS
            kinds.add(kind)
            assert child != g
            child.to_network(space, "child")  # shape inference must hold
            g = child
        assert kinds == set(MUTATION_KINDS)

    def test_mutation_stream_is_seed_deterministic(self):
        space = EvolutionSpace()
        a, b = np.random.default_rng(5), np.random.default_rng(5)
        ga, gb = random_genotype(space, a), random_genotype(space, b)
        for _ in range(50):
            ga, ka = mutate(ga, space, a)
            gb, kb = mutate(gb, space, b)
            assert ga == gb and ka == kb

    def test_accuracy_proxy_monotone_diminishing(self):
        # Equally spaced work increments: gains shrink as work grows.
        small = accuracy_proxy(100_000_000, 4)
        mid = accuracy_proxy(200_000_000, 8)
        big = accuracy_proxy(300_000_000, 12)
        assert small < mid < big
        assert (mid - small) > (big - mid)  # diminishing returns


class TestParetoFront:
    def _cand(self, lat, acc, tag):
        return Candidate(
            genotype=Genotype(stage_widths=(16,), blocks=(((1, 3),),)),
            content_hash=tag,
            latency_ms=lat,
            accuracy=acc,
        )

    def test_front_is_nondominated_and_sorted(self):
        cands = [
            self._cand(10.0, 30.0, "a"),
            self._cand(12.0, 28.0, "b"),  # dominated by a
            self._cand(15.0, 40.0, "c"),
            self._cand(15.0, 35.0, "d"),  # dominated by c
            self._cand(30.0, 50.0, "e"),
        ]
        front = pareto_front(cands)
        assert [c.content_hash for c in front] == ["a", "c", "e"]
        lats = [c.latency_ms for c in front]
        accs = [c.accuracy for c in front]
        assert lats == sorted(lats)
        assert accs == sorted(accs)

    def test_exact_tie_breaks_on_hash(self):
        cands = [self._cand(10.0, 30.0, "z"), self._cand(10.0, 30.0, "a")]
        front = pareto_front(cands)
        assert [c.content_hash for c in front] == ["a"]


class TestRunSearch:
    def _config(self, **kw):
        defaults = dict(
            generations=3, population=10, latency_budget_ms=450.0, seed=7
        )
        defaults.update(kw)
        return SearchConfig(**defaults)

    def test_same_seed_same_digest_across_backends(self, served):
        results = {}
        for backend, jobs in (("serial", 1), ("thread", 3)):
            plane = BulkQueryPlane(served.service)
            results[backend] = run_search(
                plane,
                served.device,
                self._config(backend=backend, jobs=jobs),
            )
        assert results["serial"].digest == results["thread"].digest
        assert results["serial"].winner == results["thread"].winner
        assert results["serial"].pareto == results["thread"].pareto

    def test_serial_rerun_is_bit_stable(self, served):
        a = run_search(
            BulkQueryPlane(served.service), served.device, self._config()
        )
        b = run_search(
            BulkQueryPlane(served.service), served.device, self._config()
        )
        assert a.digest == b.digest

    def test_different_seeds_explore_differently(self, served):
        a = run_search(
            BulkQueryPlane(served.service), served.device, self._config(seed=1)
        )
        b = run_search(
            BulkQueryPlane(served.service), served.device, self._config(seed=2)
        )
        assert a.digest != b.digest

    def test_winner_is_feasible_and_on_front(self, served):
        result = run_search(
            BulkQueryPlane(served.service),
            served.device,
            self._config(latency_budget_ms=1e6),  # everything feasible
        )
        assert result.winner is not None
        assert result.winner.latency_ms <= 1e6
        best_acc = max(c.accuracy for c in result.pareto)
        assert result.winner.accuracy == best_acc

    def test_impossible_budget_has_no_winner(self, served):
        result = run_search(
            BulkQueryPlane(served.service),
            served.device,
            self._config(latency_budget_ms=1e-6),
        )
        assert result.winner is None
        assert len(result.pareto) >= 1  # front exists regardless

    def test_one_bulk_call_per_generation(self, served):
        plane = BulkQueryPlane(served.service)
        config = self._config(generations=4, population=8)
        run_search(plane, served.device, config)
        assert plane.stats["calls"] == config.generations
        assert plane.stats["requests"] == config.generations * config.population
        # Elite survivors and revisited candidates come from the caches.
        assert plane.stats["pred_hits"] + plane.stats["dedup_hits"] >= (
            config.generations - 1
        )
        assert plane.stats["predicted"] < plane.stats["requests"]

    def test_space_too_deep_for_encoder_raises(self, served):
        deep = EvolutionSpace(max_blocks=64)
        with pytest.raises(ValueError, match="encoder"):
            run_search(
                BulkQueryPlane(served.service),
                served.device,
                self._config(space=deep),
            )
