"""End-to-end integration tests across all subsystems."""

import numpy as np

import repro
from repro.core.representation import NetworkEncoder, SignatureHardwareEncoder
from repro.core.cost_model import CostModel, default_regressor
from repro.core.signature import select_signature_set
from repro.devices.catalog import build_fleet
from repro.devices.measurement import MeasurementHarness
from repro.ml.metrics import spearmanr
from repro.pipeline import build_paper_artifacts


class TestPipeline:
    def test_small_artifacts_build(self, tmp_path):
        art = build_paper_artifacts(
            seed=1, n_random_networks=4, n_devices=6, cache_dir=tmp_path
        )
        assert len(art.suite) == 22
        assert len(art.fleet) == 6
        assert art.dataset.n_points == 22 * 6

    def test_cache_roundtrip_identical(self, tmp_path):
        a = build_paper_artifacts(seed=1, n_random_networks=4, n_devices=6, cache_dir=tmp_path)
        b = build_paper_artifacts(seed=1, n_random_networks=4, n_devices=6, cache_dir=tmp_path)
        assert np.array_equal(a.dataset.latencies_ms, b.dataset.latencies_ms)

    def test_no_cache_deterministic(self):
        a = build_paper_artifacts(seed=2, n_random_networks=3, n_devices=4)
        b = build_paper_artifacts(seed=2, n_random_networks=3, n_devices=4)
        assert np.array_equal(a.dataset.latencies_ms, b.dataset.latencies_ms)

    def test_public_api_importable(self):
        assert repro.__version__
        assert callable(repro.build_paper_artifacts)
        assert callable(repro.device_split_evaluation)


class TestEndToEndWorkflow:
    """The full paper workflow on the small fixture."""

    def test_signature_model_beats_nothing_and_ranks_networks(
        self, small_suite, small_fleet, small_dataset
    ):
        # 1. Select a signature set on training devices only.
        train_names = small_dataset.device_names[:16]
        test_names = small_dataset.device_names[16:]
        train_rows = [small_dataset.device_index(d) for d in train_names]
        sig_idx = select_signature_set(
            small_dataset.latencies_ms[train_rows], 4, "mis", rng=0
        )
        sig_names = [small_dataset.network_names[i] for i in sig_idx]

        # 2. Train the cost model.
        encoder = NetworkEncoder(list(small_suite))
        hw = SignatureHardwareEncoder(sig_names)
        model = CostModel(encoder, hw, default_regressor(0))
        targets = [n for n in small_dataset.network_names if n not in sig_names]
        train_hw = {d: hw.encode_from_dataset(small_dataset, d) for d in train_names}
        X, y = model.build_training_set(
            small_dataset, small_suite, train_hw, network_names=targets
        )
        model.fit(X, y)

        # 3. Predict for an unseen device and check rank quality — the
        # NAS use-case the paper motivates (SCCS rationale).
        device = test_names[0]
        hw_vec = hw.encode_from_dataset(small_dataset, device)
        net_feats = encoder.encode_all([small_suite[n] for n in targets])
        preds = model.predict(
            model.assemble(net_feats, np.tile(hw_vec, (len(targets), 1)))
        )
        actual = np.array([small_dataset.latency(device, n) for n in targets])
        assert spearmanr(actual, preds) > 0.8

    def test_new_device_onboarding_via_fresh_measurements(
        self, small_suite, small_dataset
    ):
        """A device never seen in the dataset is characterized with just
        the signature measurements (the paper's deployment story)."""
        sig_names = small_dataset.network_names[:4]
        encoder = NetworkEncoder(list(small_suite))
        hw = SignatureHardwareEncoder(sig_names)
        model = CostModel(encoder, hw, default_regressor(0))
        train_hw = {
            d: hw.encode_from_dataset(small_dataset, d)
            for d in small_dataset.device_names
        }
        targets = [n for n in small_dataset.network_names if n not in sig_names]
        X, y = model.build_training_set(
            small_dataset, small_suite, train_hw, network_names=targets
        )
        model.fit(X, y)

        # Fresh device outside the dataset's fleet.
        new_device = build_fleet(40, seed=77)[33]
        harness = MeasurementHarness(seed=9)
        measurements = {
            name: harness.measure_ms(new_device, small_suite[name])
            for name in sig_names
        }
        hw_vec = hw.encode_from_measurements(measurements)
        net_feats = encoder.encode_all([small_suite[n] for n in targets])
        preds = model.predict(
            model.assemble(net_feats, np.tile(hw_vec, (len(targets), 1)))
        )
        actual = np.array(
            [harness.measure_ms(new_device, small_suite[n]) for n in targets]
        )
        # Rank fidelity on a brand-new device.
        assert spearmanr(actual, preds) > 0.7
