"""Tests for work accounting and serialization round-trips."""

import json

import pytest

from repro.nnir.flops import network_work
from repro.nnir.graph import Layer, Network
from repro.nnir.ops import (
    Activation,
    ComputeKind,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    InvertedBottleneck,
    Linear,
    TensorShape,
)
from repro.nnir.serialize import network_from_dict, network_to_dict


def _net():
    layers = [
        Layer(Conv2d(3, 16, 3, 2, 1)),
        Layer(Activation("relu6"), (0,)),
        Layer(InvertedBottleneck(16, 24, 6, 3, 2, use_se=True), (1,)),
        Layer(GlobalAvgPool(), (2,)),
        Layer(Flatten(), (3,)),
        Layer(Linear(24, 100), (4,)),
    ]
    return Network("acct", TensorShape(3, 64, 64), layers)


class TestNetworkWork:
    def test_macs_equal_sum_of_layer_primitives(self):
        net = _net()
        work = network_work(net)
        manual = sum(
            p.macs
            for layer, in_shapes, _ in net.walk()
            for p in layer.op.primitives(in_shapes)
        )
        assert work.macs == manual

    def test_params_equal_sum_of_layer_params(self):
        net = _net()
        work = network_work(net)
        manual = sum(layer.op.param_count(ins) for layer, ins, _ in net.walk())
        assert work.params == manual

    def test_by_kind_partitions_macs(self):
        work = network_work(_net())
        assert sum(work.by_kind.values()) == work.macs

    def test_flops_is_twice_macs(self):
        work = network_work(_net())
        assert work.flops == 2 * work.macs

    def test_primitive_order_preserved(self):
        work = network_work(_net())
        # First primitive is the stem convolution.
        assert work.primitives[0].kind is ComputeKind.CONV_STD

    def test_total_bytes(self):
        work = network_work(_net())
        assert work.total_bytes == work.params + work.activation_bytes


class TestSerialization:
    def test_roundtrip_preserves_structure(self):
        net = _net()
        clone = network_from_dict(network_to_dict(net))
        assert clone.name == net.name
        assert clone.n_layers == net.n_layers
        assert clone.layer_shapes() == net.layer_shapes()
        assert network_work(clone).macs == network_work(net).macs

    def test_dict_is_json_safe(self):
        payload = network_to_dict(_net())
        restored = json.loads(json.dumps(payload))
        clone = network_from_dict(restored)
        assert clone.output_shape == _net().output_shape

    def test_unknown_op_type_rejected(self):
        payload = network_to_dict(_net())
        payload["layers"][0]["op"]["type"] = "Conv3d"
        with pytest.raises(ValueError, match="unknown operator"):
            network_from_dict(payload)

    def test_all_zoo_networks_roundtrip(self):
        from repro.generator.zoo import build_zoo

        for net in build_zoo():
            clone = network_from_dict(network_to_dict(net))
            assert network_work(clone).macs == network_work(net).macs
