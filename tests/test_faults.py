"""Tests for failure injection, retry/quarantine and resumable campaigns."""

import numpy as np
import pytest

from repro import telemetry
from repro.cache import CampaignCheckpoint
from repro.dataset.collection import collect_dataset
from repro.devices.catalog import build_fleet
from repro.devices.measurement import MeasurementHarness
from repro.faults import (
    AdversaryPlan,
    CorruptRowFault,
    DeviceDropoutFault,
    FaultPlan,
    FaultyHarness,
    InvalidRowError,
    RetryPolicy,
    TransientMeasurementFault,
    apply_adversary_plan,
)
from repro.generator.suite import BenchmarkSuite
from repro.parallel import BACKENDS, Executor


@pytest.fixture(scope="module")
def tiny_suite():
    return BenchmarkSuite.default(n_random=2, seed=0)


@pytest.fixture(scope="module")
def tiny_fleet():
    return build_fleet(8, seed=0)


@pytest.fixture(scope="module")
def harness():
    return MeasurementHarness(seed=0)


@pytest.fixture(scope="module")
def clean_matrix(tiny_suite, tiny_fleet, harness):
    return collect_dataset(tiny_suite, tiny_fleet, harness).latencies_ms


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="device_dropout"):
            FaultPlan(device_dropout=1.5)
        with pytest.raises(ValueError, match="must not exceed 1"):
            FaultPlan(failure_probability=0.7, corrupt_probability=0.7)
        with pytest.raises(ValueError, match="straggler_delay_s"):
            FaultPlan(straggler_delay_s=-1)

    def test_decisions_deterministic(self):
        plan = FaultPlan(seed=3, failure_probability=0.4, corrupt_probability=0.2)
        again = FaultPlan(seed=3, failure_probability=0.4, corrupt_probability=0.2)
        for attempt in range(10):
            assert plan.attempt_outcome("dev", attempt) == again.attempt_outcome(
                "dev", attempt
            )

    def test_decisions_keyed_by_device_and_attempt(self):
        plan = FaultPlan(seed=0, failure_probability=0.5)
        outcomes = {
            (d, a): plan.attempt_outcome(d, a)
            for d in ("dev_a", "dev_b")
            for a in range(20)
        }
        assert len(set(outcomes.values())) == 2  # both "ok" and "fail" occur

    def test_dropout_rate_roughly_matches(self):
        plan = FaultPlan(seed=1, device_dropout=0.3)
        dropped = sum(plan.is_dropped(f"dev_{i}") for i in range(500))
        assert 100 < dropped < 200

    def test_corrupt_row_damages_cells(self):
        plan = FaultPlan(seed=2, corrupt_probability=1.0, corrupt_cell_fraction=0.5)
        row = np.linspace(1.0, 10.0, 10)
        damaged = plan.corrupt_row(row, "dev", 0)
        bad = np.isnan(damaged) | (damaged <= 0)
        assert bad.sum() == 5
        assert np.array_equal(row, np.linspace(1.0, 10.0, 10))  # input untouched
        assert np.array_equal(
            damaged, plan.corrupt_row(row, "dev", 0), equal_nan=True
        )

    def test_straggler_delay(self):
        plan = FaultPlan(seed=0, straggler_probability=1.0, straggler_delay_s=4.0)
        assert plan.straggler_delay("dev", 0) == 4.0
        assert FaultPlan(seed=0).straggler_delay("dev", 0) == 0.0

    def test_from_spec(self):
        plan = FaultPlan.from_spec("seed=5, dropout=0.1, fail=0.2, corrupt=0.05")
        assert plan.seed == 5
        assert plan.device_dropout == 0.1
        assert plan.failure_probability == 0.2
        assert plan.corrupt_probability == 0.05

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.from_spec("explode=1")
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.from_spec("dropout")

    def test_to_config_round_trip(self):
        plan = FaultPlan(seed=9, failure_probability=0.25)
        assert FaultPlan(**plan.to_config()) == plan


class TestAdversaryPlan:
    NETS = [f"net_{j}" for j in range(12)]

    def test_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            AdversaryPlan(fraction=1.5)
        with pytest.raises(ValueError, match="weight"):
            AdversaryPlan(fraction=0.2, noise_weight=-1.0)
        with pytest.raises(ValueError, match="at least one mode"):
            AdversaryPlan(
                fraction=0.2, unit_scale_weight=0, bias_weight=0,
                noise_weight=0, replay_weight=0, drift_weight=0,
            )
        with pytest.raises(ValueError, match="unit_scale_factor"):
            AdversaryPlan(unit_scale_factor=1.0)
        with pytest.raises(ValueError, match="bias_min"):
            AdversaryPlan(bias_min=50.0, bias_max=10.0)
        with pytest.raises(ValueError, match="noise_sigma"):
            AdversaryPlan(noise_sigma=-0.5)
        with pytest.raises(ValueError, match="replay_fraction"):
            AdversaryPlan(replay_fraction=2.0)
        with pytest.raises(ValueError, match="drift_per_network"):
            AdversaryPlan(drift_per_network=-0.1)

    def test_population_is_seeded_and_roughly_matches_fraction(self):
        plan = AdversaryPlan(seed=1, fraction=0.3)
        devices = [f"dev_{i}" for i in range(500)]
        adversaries = plan.adversary_devices(devices)
        assert adversaries == AdversaryPlan(seed=1, fraction=0.3).adversary_devices(devices)
        assert 100 < len(adversaries) < 200
        assert AdversaryPlan(seed=0, fraction=0.0).adversary_devices(devices) == ()

    def test_mode_is_fixed_per_device_and_respects_weights(self):
        plan = AdversaryPlan(
            seed=0, fraction=1.0, unit_scale_weight=1.0, bias_weight=0.0,
            noise_weight=0.0, replay_weight=0.0, drift_weight=0.0,
        )
        assert all(plan.device_mode(f"dev_{i}") == "unit_scale" for i in range(50))

    def test_corruption_keyed_by_network_not_attempt(self):
        plan = AdversaryPlan(seed=2, fraction=1.0)
        row = np.linspace(10.0, 120.0, len(self.NETS))
        a = plan.corrupt_row(row, "dev_0", self.NETS)
        b = plan.corrupt_row(row, "dev_0", self.NETS)
        assert np.array_equal(a, b)  # a retry reproduces the same lie
        assert np.array_equal(row, np.linspace(10.0, 120.0, len(self.NETS)))

    def test_corrupted_cells_stay_finite_and_positive(self):
        row = np.linspace(10.0, 120.0, len(self.NETS))
        for seed in range(5):
            plan = AdversaryPlan(seed=seed, fraction=1.0)
            for i in range(10):
                damaged = plan.corrupt_row(row, f"dev_{i}", self.NETS)
                assert np.isfinite(damaged).all()
                assert (damaged > 0).all()

    def test_missing_cells_stay_missing(self):
        plan = AdversaryPlan(seed=0, fraction=1.0)
        row = np.linspace(10.0, 120.0, len(self.NETS))
        row[3] = np.nan
        damaged = plan.corrupt_row(row, "dev_0", self.NETS)
        assert np.isnan(damaged[3])
        assert np.isfinite(np.delete(damaged, 3)).all()

    def test_honest_devices_untouched(self):
        plan = AdversaryPlan(seed=0, fraction=0.0)
        row = np.linspace(10.0, 120.0, len(self.NETS))
        assert np.array_equal(plan.corrupt_row(row, "dev_0", self.NETS), row)

    def test_unit_scale_moves_cells_by_factor(self):
        plan = AdversaryPlan(
            seed=0, fraction=1.0, unit_scale_weight=1.0, bias_weight=0.0,
            noise_weight=0.0, replay_weight=0.0, drift_weight=0.0,
            unit_scale_factor=1000.0,
        )
        row = np.linspace(10.0, 120.0, len(self.NETS))
        damaged = plan.corrupt_row(row, "dev_0", self.NETS)
        ratio = damaged / row
        assert np.allclose(ratio, 1000.0) or np.allclose(ratio, 1e-3)

    def test_from_spec_round_trip(self):
        plan = AdversaryPlan(seed=7, fraction=0.2, noise_sigma=2.0)
        assert AdversaryPlan(**plan.to_config()) == plan
        parsed = AdversaryPlan.from_spec("seed=7, fraction=0.2, sigma=2.0")
        assert parsed == plan

    def test_from_spec_naming_a_mode_disables_the_rest(self):
        plan = AdversaryPlan.from_spec("fraction=0.2, unit_scale=1")
        assert plan.unit_scale_weight == 1.0
        assert plan.bias_weight == 0.0
        assert plan.noise_weight == 0.0
        assert plan.replay_weight == 0.0
        assert plan.drift_weight == 0.0

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown adversary spec key"):
            AdversaryPlan.from_spec("explode=1")
        with pytest.raises(ValueError, match="key=value"):
            AdversaryPlan.from_spec("fraction")

    def test_from_spec_rejects_out_of_range_values(self):
        with pytest.raises(ValueError, match="fraction"):
            AdversaryPlan.from_spec("fraction=1.5")
        with pytest.raises(ValueError, match="weight"):
            AdversaryPlan.from_spec("fraction=0.2, noise=-1")
        with pytest.raises(ValueError, match="spec value"):
            AdversaryPlan.from_spec("fraction=lots")

    def test_row_shape_validated(self):
        plan = AdversaryPlan(seed=0, fraction=1.0)
        with pytest.raises(ValueError, match="does not match"):
            plan.corrupt_row(np.ones(3), "dev_0", self.NETS)


class TestApplyAdversaryPlan:
    def test_no_plan_returns_same_object(self, tiny_suite, tiny_fleet, harness):
        ds = collect_dataset(tiny_suite, tiny_fleet, harness)
        assert apply_adversary_plan(ds, None) is ds
        assert apply_adversary_plan(ds, AdversaryPlan(fraction=0.0)) is ds

    def test_matches_harness_path_byte_identically(
        self, tiny_suite, tiny_fleet, harness, clean_matrix
    ):
        plan = AdversaryPlan(seed=3, fraction=0.5)
        via_harness = collect_dataset(
            tiny_suite, tiny_fleet, harness, adversary_plan=plan
        )
        clean = collect_dataset(tiny_suite, tiny_fleet, harness)
        via_batch = apply_adversary_plan(clean, plan)
        assert np.array_equal(via_harness.latencies_ms, via_batch.latencies_ms)
        # Honest rows are untouched; adversarial rows actually changed.
        adversaries = set(plan.adversary_devices(tiny_fleet.names))
        assert adversaries  # seed chosen so the tiny fleet has some
        for i, name in enumerate(tiny_fleet.names):
            same = np.array_equal(via_harness.latencies_ms[i], clean_matrix[i])
            assert same == (name not in adversaries)

    def test_counts_adversaries_in_telemetry(self, tiny_suite, tiny_fleet, harness):
        plan = AdversaryPlan(seed=3, fraction=0.5)
        ds = collect_dataset(tiny_suite, tiny_fleet, harness)
        with telemetry.scoped_registry() as reg:
            apply_adversary_plan(ds, plan)
        assert reg.counter_value("adversary.devices") == len(
            plan.adversary_devices(tiny_fleet.names)
        )

    def test_survives_retries_under_transport_faults(
        self, tiny_suite, tiny_fleet, harness
    ):
        adversary = AdversaryPlan(seed=3, fraction=0.5)
        fault_plan = FaultPlan(seed=0, failure_probability=0.4)
        with_faults = collect_dataset(
            tiny_suite, tiny_fleet, harness,
            fault_plan=fault_plan, adversary_plan=adversary,
            retry_policy=RetryPolicy(max_retries=8),
        )
        without = collect_dataset(
            tiny_suite, tiny_fleet, harness, adversary_plan=adversary
        )
        surviving = ~with_faults.missing_mask.any(axis=1)
        assert np.array_equal(
            with_faults.latencies_ms[surviving], without.latencies_ms[surviving]
        ), "retries must reproduce the same corrupted values"


class TestRowValidation:
    def test_non_finite_raises_typed_error(self, tiny_suite, tiny_fleet, harness):
        from repro.dataset.collection import _validate_row

        row = np.ones(5)
        _validate_row(row, 5, "dev")  # clean row passes
        bad = row.copy()
        bad[1] = np.inf
        with pytest.raises(InvalidRowError, match="non-finite"):
            _validate_row(bad, 5, "dev")
        bad[1] = np.nan
        with pytest.raises(InvalidRowError, match="non-finite"):
            _validate_row(bad, 5, "dev")

    def test_non_positive_raises_typed_error(self):
        from repro.dataset.collection import _validate_row

        bad = np.ones(5)
        bad[2] = -1.0
        with pytest.raises(InvalidRowError, match="non-positive"):
            _validate_row(bad, 5, "dev")
        bad[2] = 0.0
        with pytest.raises(InvalidRowError, match="non-positive"):
            _validate_row(bad, 5, "dev")

    def test_shape_mismatch_stays_plain_corrupt_fault(self):
        from repro.dataset.collection import _validate_row

        with pytest.raises(CorruptRowFault) as exc_info:
            _validate_row(np.ones(4), 5, "dev")
        assert not isinstance(exc_info.value, InvalidRowError)

    def test_invalid_row_error_is_retryable_corrupt_fault(self):
        assert issubclass(InvalidRowError, CorruptRowFault)


class TestFaultyHarness:
    def test_requires_some_plan(self, harness):
        with pytest.raises(ValueError, match="FaultPlan, an AdversaryPlan"):
            FaultyHarness(harness)

    def test_adversary_only_harness_corrupts_rows(
        self, tiny_suite, tiny_fleet, harness
    ):
        from repro.devices.latency import compile_works

        adversary = AdversaryPlan(seed=3, fraction=1.0)
        faulty = FaultyHarness(harness, adversary=adversary)
        names = tuple(tiny_suite.names)
        compiled = compile_works([tiny_suite.work(n) for n in names])
        device = tiny_fleet[0]
        clean = harness.measure_row_ms(device, compiled, names)
        row = faulty.measure_row_attempt(device, compiled, names, 0)
        assert np.array_equal(row, adversary.corrupt_row(clean, device.name, names))
        # Keyed by network, not attempt: another attempt lies identically.
        assert np.array_equal(row, faulty.measure_row_attempt(device, compiled, names, 7))

    def test_dropout_raises(self, tiny_suite, tiny_fleet, harness):
        plan = FaultPlan(seed=0, device_dropout=1.0)
        faulty = FaultyHarness(harness, plan)
        from repro.devices.latency import compile_works

        names = tuple(tiny_suite.names)
        compiled = compile_works([tiny_suite.work(n) for n in names])
        with pytest.raises(DeviceDropoutFault):
            faulty.measure_row_attempt(tiny_fleet[0], compiled, names, 0)

    def test_transient_failure_then_success(self, tiny_suite, tiny_fleet, harness):
        from repro.devices.latency import compile_works

        plan = FaultPlan(seed=0, failure_probability=0.5)
        faulty = FaultyHarness(harness, plan)
        names = tuple(tiny_suite.names)
        compiled = compile_works([tiny_suite.work(n) for n in names])
        device = tiny_fleet[0]
        outcomes = [plan.attempt_outcome(device.name, a) for a in range(50)]
        fail_at = outcomes.index("fail")
        ok_at = outcomes.index("ok")
        with pytest.raises(TransientMeasurementFault):
            faulty.measure_row_attempt(device, compiled, names, fail_at)
        row = faulty.measure_row_attempt(device, compiled, names, ok_at)
        assert np.array_equal(row, harness.measure_row_ms(device, compiled, names))

    def test_delegates_config_attributes(self, harness):
        faulty = FaultyHarness(harness, FaultPlan())
        assert faulty.runs == harness.runs
        assert faulty.seed == harness.seed
        assert faulty.model is harness.model


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(device_budget_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(quarantine_after=0)

    def test_quarantine_default_is_retry_exhaustion(self):
        assert RetryPolicy(max_retries=4).max_consecutive_failures == 5
        assert RetryPolicy(max_retries=4, quarantine_after=2).max_consecutive_failures == 2

    def test_backoff_grows_and_is_deterministic(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0, backoff_jitter=0.1)
        waits = [policy.backoff_s(0, "dev", a) for a in (1, 2, 3)]
        assert waits == [policy.backoff_s(0, "dev", a) for a in (1, 2, 3)]
        assert waits[0] < waits[1] < waits[2]
        for attempt, wait in enumerate(waits, start=1):
            base = 2.0 ** (attempt - 1)
            assert 0.9 * base <= wait <= 1.1 * base


class TestFaultTolerantCampaign:
    PLAN = FaultPlan(
        seed=11,
        device_dropout=0.2,
        failure_probability=0.3,
        corrupt_probability=0.15,
    )
    POLICY = RetryPolicy(max_retries=6)

    def _collect(self, suite, fleet, harness, **kwargs):
        return collect_dataset(
            suite, fleet, harness, fault_plan=self.PLAN,
            retry_policy=kwargs.pop("retry_policy", self.POLICY), **kwargs,
        )

    def test_surviving_rows_match_clean_run_exactly(
        self, tiny_suite, tiny_fleet, harness, clean_matrix
    ):
        ds = self._collect(tiny_suite, tiny_fleet, harness)
        surviving = ~ds.missing_mask.any(axis=1)
        assert np.array_equal(
            ds.latencies_ms[surviving], clean_matrix[surviving]
        ), "retried measurements must be byte-identical to the fault-free run"

    def test_byte_identical_across_backends(self, tiny_suite, tiny_fleet, harness):
        matrices = []
        for backend in BACKENDS:
            ds = self._collect(
                tiny_suite, tiny_fleet, harness, executor=Executor(backend, 4)
            )
            matrices.append(ds.latencies_ms)
        for other in matrices[1:]:
            assert np.array_equal(matrices[0], other, equal_nan=True)

    def test_quarantine_counts_and_does_not_abort(
        self, tiny_suite, tiny_fleet, harness
    ):
        plan = FaultPlan(seed=0, failure_probability=1.0)
        with telemetry.scoped_registry() as reg:
            ds = collect_dataset(
                tiny_suite, tiny_fleet, harness,
                fault_plan=plan, retry_policy=RetryPolicy(max_retries=1),
            )
        assert ds.missing_mask.all()
        assert reg.counter_value("campaign.quarantined") == len(tiny_fleet)
        assert reg.counter_value("campaign.quarantined.retries") == len(tiny_fleet)
        assert reg.counter_value("campaign.retries") > 0

    def test_dropout_quarantines_without_retries(self, tiny_suite, tiny_fleet, harness):
        plan = FaultPlan(seed=0, device_dropout=1.0)
        with telemetry.scoped_registry() as reg:
            ds = collect_dataset(tiny_suite, tiny_fleet, harness, fault_plan=plan)
        assert ds.missing_mask.all()
        assert reg.counter_value("campaign.dropouts") == len(tiny_fleet)
        assert reg.counter_value("campaign.retries") == 0

    def test_quarantine_after_caps_consecutive_failures(
        self, tiny_suite, tiny_fleet, harness
    ):
        plan = FaultPlan(seed=0, failure_probability=1.0)
        policy = RetryPolicy(max_retries=6, quarantine_after=2)
        with telemetry.scoped_registry() as reg:
            collect_dataset(
                tiny_suite, tiny_fleet, harness, fault_plan=plan, retry_policy=policy
            )
        # Exactly one retry per device before quarantine kicks in.
        assert reg.counter_value("campaign.retries") == len(tiny_fleet)

    def test_budget_exhaustion_quarantines(self, tiny_suite, tiny_fleet, harness):
        plan = FaultPlan(seed=0, failure_probability=1.0)
        policy = RetryPolicy(
            max_retries=10, backoff_base_s=100.0, device_budget_s=50.0
        )
        with telemetry.scoped_registry() as reg:
            ds = collect_dataset(
                tiny_suite, tiny_fleet, harness, fault_plan=plan, retry_policy=policy
            )
        assert ds.missing_mask.all()
        assert reg.counter_value("campaign.budget_exhausted") == len(tiny_fleet)
        assert reg.counter_value("campaign.quarantined.budget") == len(tiny_fleet)

    def test_corrupt_rows_are_retried_never_served(
        self, tiny_suite, tiny_fleet, harness, clean_matrix
    ):
        plan = FaultPlan(seed=4, corrupt_probability=0.5)
        with telemetry.scoped_registry() as reg:
            ds = collect_dataset(
                tiny_suite, tiny_fleet, harness,
                fault_plan=plan, retry_policy=RetryPolicy(max_retries=10),
            )
            corrupt_seen = reg.counter_value("campaign.corrupt_rows")
        surviving = ~ds.missing_mask.any(axis=1)
        assert np.array_equal(ds.latencies_ms[surviving], clean_matrix[surviving])
        assert corrupt_seen > 0


class _KillAfter:
    """Serial executor that dies after K tasks — an interrupted campaign."""

    def __init__(self, k: int) -> None:
        self.k = k

    def map(self, fn, tasks, *, shared=None, catch_errors=False):
        return list(self.map_stream(fn, tasks, shared=shared, catch_errors=catch_errors))

    def map_stream(self, fn, tasks, *, shared=None, catch_errors=False):
        for i, task in enumerate(tasks):
            if i >= self.k:
                raise KeyboardInterrupt("campaign killed mid-flight")
            yield fn(shared, task)


class TestCheckpointResume:
    PLAN = FaultPlan(seed=11, device_dropout=0.2, failure_probability=0.3)
    POLICY = RetryPolicy(max_retries=6)

    def test_interrupt_then_resume_is_byte_identical(
        self, tiny_suite, tiny_fleet, harness, tmp_path
    ):
        kwargs = dict(fault_plan=self.PLAN, retry_policy=self.POLICY)
        reference = collect_dataset(tiny_suite, tiny_fleet, harness, **kwargs)

        checkpoint = CampaignCheckpoint(tmp_path, "camp", {"seed": 11})
        with pytest.raises(KeyboardInterrupt):
            collect_dataset(
                tiny_suite, tiny_fleet, harness,
                checkpoint=checkpoint, executor=_KillAfter(3), **kwargs,
            )
        with telemetry.scoped_registry() as reg:
            resumed = collect_dataset(
                tiny_suite, tiny_fleet, harness,
                checkpoint=checkpoint, resume=True, **kwargs,
            )
            assert reg.counter_value("campaign.resumed_rows") == 3
        assert np.array_equal(
            reference.latencies_ms, resumed.latencies_ms, equal_nan=True
        )

    def test_fresh_run_clears_stale_checkpoint(
        self, tiny_suite, tiny_fleet, harness, tmp_path
    ):
        checkpoint = CampaignCheckpoint(tmp_path, "camp", {"seed": 11})
        bogus = np.full(len(tiny_suite.names), 123.0)
        checkpoint.store_row(tiny_fleet.names[0], bogus)
        ds = collect_dataset(
            tiny_suite, tiny_fleet, harness, checkpoint=checkpoint,
            fault_plan=self.PLAN, retry_policy=self.POLICY,
        )
        # Without resume, the stale row must not leak into the matrix.
        assert not np.array_equal(ds.latencies_ms[0], bogus)

    def test_resume_requires_checkpoint(self, tiny_suite, tiny_fleet, harness):
        with pytest.raises(ValueError, match="requires a checkpoint"):
            collect_dataset(tiny_suite, tiny_fleet, harness, resume=True)

    def test_quarantined_rows_are_checkpointed(
        self, tiny_suite, tiny_fleet, harness, tmp_path
    ):
        plan = FaultPlan(seed=0, device_dropout=1.0)
        checkpoint = CampaignCheckpoint(tmp_path, "camp", {"q": 1})
        collect_dataset(
            tiny_suite, tiny_fleet, harness, fault_plan=plan, checkpoint=checkpoint
        )
        row = checkpoint.load_row(tiny_fleet.names[0], len(tiny_suite.names))
        assert row is not None and np.isnan(row).all()
        # A resumed run loads the quarantined rows instead of retrying.
        with telemetry.scoped_registry() as reg:
            collect_dataset(
                tiny_suite, tiny_fleet, harness,
                fault_plan=plan, checkpoint=checkpoint, resume=True,
            )
            assert reg.counter_value("campaign.resumed_rows") == len(tiny_fleet)


class TestPipelineFaults:
    def test_build_paper_artifacts_with_faults_and_resume(self, tmp_path):
        from repro.pipeline import build_paper_artifacts

        plan = FaultPlan(seed=2, device_dropout=0.3)
        kwargs = dict(
            seed=0, n_random_networks=1, n_devices=6,
            cache_dir=tmp_path, fault_plan=plan,
        )
        art = build_paper_artifacts(**kwargs)
        # Second call hits the cache (faults participate in the key).
        again = build_paper_artifacts(**kwargs)
        assert np.array_equal(
            art.dataset.latencies_ms, again.dataset.latencies_ms, equal_nan=True
        )
        clean = build_paper_artifacts(
            seed=0, n_random_networks=1, n_devices=6, cache_dir=tmp_path
        )
        surviving = ~art.dataset.missing_mask.any(axis=1)
        assert surviving.sum() < len(art.fleet)  # some devices dropped
        assert np.array_equal(
            art.dataset.latencies_ms[surviving],
            clean.dataset.latencies_ms[surviving],
        )

    def test_resume_without_cache_rejected(self):
        from repro.pipeline import build_paper_artifacts

        with pytest.raises(ValueError, match="resume"):
            build_paper_artifacts(
                seed=0, n_random_networks=1, n_devices=4, resume=True
            )
