"""Campaign streaming-collection tests: byte-identity of the tile/shm
fast path across every backend and block size, checkpoint chunk flush
and resume, and fault-injected campaigns staying backend-independent."""

import os

import numpy as np
import pytest

from repro import shm
from repro.cache import CampaignCheckpoint
from repro.dataset.collection import collect_dataset
from repro.devices.catalog import build_fleet
from repro.devices.latency import compile_works
from repro.devices.measurement import MeasurementHarness
from repro.faults import FaultPlan
from repro.generator.suite import BenchmarkSuite
from repro.parallel import shutdown_pools


@pytest.fixture(scope="module")
def campaign():
    suite = BenchmarkSuite.default(n_random=2, seed=0)
    fleet = build_fleet(5, seed=0)
    names = list(suite.names)
    compiled = compile_works([suite.work(name) for name in names])
    harness = MeasurementHarness(seed=0)
    reference = np.stack(
        [harness.measure_row_ms(device, compiled, names) for device in fleet]
    )
    return suite, fleet, reference


@pytest.fixture(autouse=True)
def _no_leaks():
    yield
    assert shutdown_pools() == []
    assert shm.leaked_segments() == []


def _collect(suite, fleet, **kwargs):
    return collect_dataset(suite, fleet, MeasurementHarness(seed=0), **kwargs)


class TestBackendByteIdentity:
    @pytest.mark.parametrize(
        "backend,jobs", [("serial", 1), ("thread", 3), ("process", 2)]
    )
    def test_backend_matches_row_reference(self, campaign, backend, jobs):
        suite, fleet, reference = campaign
        dataset = _collect(suite, fleet, backend=backend, jobs=jobs)
        assert dataset.latencies_ms.tobytes() == reference.tobytes()

    @pytest.mark.parametrize("block_size", [1, 2, 3, 100])
    def test_block_size_never_changes_bytes(self, campaign, block_size):
        suite, fleet, reference = campaign
        dataset = _collect(suite, fleet, backend="serial", block_size=block_size)
        assert dataset.latencies_ms.tobytes() == reference.tobytes()

    def test_invalid_block_size_raises(self, campaign):
        suite, fleet, _ = campaign
        with pytest.raises(ValueError, match="block_size"):
            _collect(suite, fleet, block_size=0)


class TestCheckpointStreaming:
    def test_chunk_flush_then_full_resume(self, campaign, tmp_path):
        suite, fleet, reference = campaign
        checkpoint = CampaignCheckpoint(tmp_path, "stream", {"seed": 0})
        first = _collect(suite, fleet, backend="serial", checkpoint=checkpoint)
        assert first.latencies_ms.tobytes() == reference.tobytes()
        files = sorted(os.listdir(checkpoint.directory))
        assert any(name.startswith("chunk-") for name in files)

        # Resume reads every row back instead of re-measuring: a
        # harness with a different seed would produce different bytes,
        # so identical output proves the rows came from the store.
        resumed = collect_dataset(
            suite,
            fleet,
            MeasurementHarness(seed=999),
            backend="serial",
            checkpoint=checkpoint,
            resume=True,
        )
        assert resumed.latencies_ms.tobytes() == reference.tobytes()

    def test_partial_resume_refills_missing_rows(self, campaign, tmp_path):
        suite, fleet, reference = campaign
        checkpoint = CampaignCheckpoint(tmp_path, "partial", {"seed": 0})
        _collect(
            suite, fleet, backend="process", jobs=2, checkpoint=checkpoint
        )
        files = sorted(os.listdir(checkpoint.directory))
        os.unlink(os.path.join(checkpoint.directory, files[0]))
        resumed = _collect(
            suite, fleet, backend="serial", checkpoint=checkpoint, resume=True
        )
        assert resumed.latencies_ms.tobytes() == reference.tobytes()


class TestFaultPathByteIdentity:
    def test_fault_campaign_is_backend_independent(self, campaign):
        suite, fleet, _ = campaign
        plan = FaultPlan(
            seed=7,
            failure_probability=0.2,
            device_dropout=0.05,
            corrupt_probability=0.1,
        )
        outputs = [
            _collect(suite, fleet, backend=backend, jobs=jobs, fault_plan=plan)
            .latencies_ms.tobytes()
            for backend, jobs in (("serial", 1), ("thread", 3), ("process", 2))
        ]
        assert outputs[0] == outputs[1] == outputs[2]

    def test_fault_campaign_resume_is_byte_identical(self, campaign, tmp_path):
        suite, fleet, _ = campaign
        plan = FaultPlan(seed=7, failure_probability=0.2)
        checkpoint = CampaignCheckpoint(tmp_path, "faulty", {"seed": 0})
        first = _collect(
            suite, fleet, backend="serial", fault_plan=plan, checkpoint=checkpoint
        )
        resumed = _collect(
            suite,
            fleet,
            backend="serial",
            fault_plan=plan,
            checkpoint=checkpoint,
            resume=True,
        )
        assert resumed.latencies_ms.tobytes() == first.latencies_ms.tobytes()
