"""Tests for pickle-free cost-model persistence."""

import numpy as np
import pytest

from repro.core.cost_model import CostModel, default_regressor
from repro.core.persistence import load_cost_model, save_cost_model
from repro.core.representation import (
    NetworkEncoder,
    SignatureHardwareEncoder,
    StaticHardwareEncoder,
)


@pytest.fixture(scope="module")
def trained(small_suite, small_dataset):
    encoder = NetworkEncoder(list(small_suite))
    sig_names = small_dataset.network_names[:4]
    hw = SignatureHardwareEncoder(sig_names)
    model = CostModel(encoder, hw, default_regressor(0))
    device_hw = {
        d: hw.encode_from_dataset(small_dataset, d)
        for d in small_dataset.device_names
    }
    targets = [n for n in small_dataset.network_names if n not in sig_names]
    X, y = model.build_training_set(
        small_dataset, small_suite, device_hw, network_names=targets
    )
    model.fit(X, y)
    return model, X, y


class TestPersistence:
    def test_roundtrip_predictions_identical(self, trained, tmp_path):
        model, X, y = trained
        path = tmp_path / "model.npz"
        save_cost_model(model, path)
        loaded = load_cost_model(path)
        assert np.allclose(loaded.predict(X), model.predict(X))

    def test_roundtrip_preserves_encoder_config(self, trained, tmp_path):
        model, _, _ = trained
        path = tmp_path / "model.npz"
        save_cost_model(model, path)
        loaded = load_cost_model(path)
        assert loaded.network_encoder.max_layers == model.network_encoder.max_layers
        assert loaded.network_encoder.width == model.network_encoder.width
        assert (
            loaded.hardware_encoder.signature_names
            == model.hardware_encoder.signature_names
        )

    def test_roundtrip_preserves_hyperparams(self, trained, tmp_path):
        model, _, _ = trained
        path = tmp_path / "model.npz"
        save_cost_model(model, path)
        loaded = load_cost_model(path)
        assert loaded.regressor.n_estimators == model.regressor.n_estimators
        assert loaded.regressor.colsample_bytree == model.regressor.colsample_bytree

    def test_static_encoder_roundtrip(self, small_suite, small_dataset, small_fleet, tmp_path):
        encoder = NetworkEncoder(list(small_suite))
        hw = StaticHardwareEncoder.from_devices(list(small_fleet))
        model = CostModel(encoder, hw, default_regressor(0))
        device_hw = {d.name: hw.encode(d) for d in small_fleet}
        X, y = model.build_training_set(small_dataset, small_suite, device_hw)
        model.fit(X, y)
        path = tmp_path / "static.npz"
        save_cost_model(model, path)
        loaded = load_cost_model(path)
        assert np.allclose(loaded.predict(X), model.predict(X))
        assert loaded.hardware_encoder.cpu_models == hw.cpu_models

    def test_unfitted_model_rejected(self, small_suite, tmp_path):
        encoder = NetworkEncoder(list(small_suite))
        model = CostModel(encoder, SignatureHardwareEncoder(["a"]))
        with pytest.raises(ValueError, match="not fitted"):
            save_cost_model(model, tmp_path / "x.npz")

    def test_non_gbt_regressor_rejected(self, small_suite, tmp_path):
        from repro.ml.linear import RidgeRegression

        encoder = NetworkEncoder(list(small_suite))
        model = CostModel(encoder, SignatureHardwareEncoder(["a"]), RidgeRegression())
        model._fitted = True
        with pytest.raises(TypeError, match="GradientBoostedTrees"):
            save_cost_model(model, tmp_path / "x.npz")

    def test_feature_importances_preserved(self, trained, tmp_path):
        model, _, _ = trained
        path = tmp_path / "model.npz"
        save_cost_model(model, path)
        loaded = load_cost_model(path)
        assert np.allclose(
            loaded.regressor.feature_importances_,
            model.regressor.feature_importances_,
        )
