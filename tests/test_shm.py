"""Tests for the zero-copy shared-memory layer (repro.shm): segment
lifecycle and refcounting, atomic create-or-attach, leak detection on
shutdown, and worker-crash recovery through the process backend."""

import os
import signal

import numpy as np
import pytest

from repro import shm
from repro.parallel import Executor, shutdown_pools


@pytest.fixture(autouse=True)
def _clean_shm(monkeypatch):
    """Each test starts and ends with no owned segments or pools."""
    monkeypatch.delenv("REPRO_SHM", raising=False)
    shm.cleanup(warn=False)
    yield
    shutdown_pools()
    shm.cleanup(warn=False)


def _roundtrip(array):
    ref = shm.share("unit-roundtrip", array)
    try:
        assert isinstance(ref, shm.ShmArray)
        view = ref.resolve()
        assert view.tobytes() == np.ascontiguousarray(array).tobytes()
        assert view.dtype == array.dtype
        assert view.shape == array.shape
        return view
    finally:
        shm.release(ref)


class TestShareRelease:
    def test_share_resolve_roundtrip(self):
        _roundtrip(np.arange(64, dtype=np.float64).reshape(8, 8))
        _roundtrip(np.arange(12, dtype=np.uint64))

    def test_resolved_view_is_read_only(self):
        ref = shm.share("unit-ro", np.ones(4))
        try:
            view = ref.resolve()
            with pytest.raises(ValueError):
                view[0] = 2.0
        finally:
            shm.release(ref)

    def test_refcount_unlinks_only_at_zero(self):
        array = np.arange(10.0)
        first = shm.share("unit-refs", array)
        second = shm.share("unit-refs", array)
        assert first == second  # same segment, same reference
        shm.release(first)
        # One reference left: the segment must still be readable.
        assert second.resolve().tobytes() == array.tobytes()
        shm.release(second)
        assert shm.owned_count() == 0
        with pytest.raises(FileNotFoundError):
            second.resolve()

    def test_release_of_plain_array_and_none_is_noop(self):
        shm.release(np.ones(3))
        shm.release(None)

    def test_disabled_via_env_returns_plain_array(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        array = np.ones(8)
        assert shm.share("unit-disabled", array) is array
        assert not shm.available()

    def test_empty_array_is_passed_through(self):
        array = np.empty(0)
        out = shm.share("unit-empty", array)
        assert isinstance(out, np.ndarray)
        assert out.nbytes == 0

    def test_ref_pickles_small(self):
        import pickle

        big = np.zeros((512, 512))
        ref = shm.share("unit-small-pickle", big)
        try:
            assert len(pickle.dumps(ref)) < 300
        finally:
            shm.release(ref)


class TestCreateOrAttach:
    def test_adopts_existing_segment_with_same_key(self):
        array = np.arange(32, dtype=np.float64)
        from multiprocessing import shared_memory

        name = shm._segment_name("unit-adopt")
        stale = shared_memory.SharedMemory(name=name, create=True, size=array.nbytes)
        stale.buf[: array.nbytes] = array.tobytes()
        stale.close()
        try:
            ref = shm.share("unit-adopt", array)
            assert isinstance(ref, shm.ShmArray)
            assert ref.resolve().tobytes() == array.tobytes()
        finally:
            shm.release(ref)
        # Adoption took ownership: release must have unlinked the stale
        # segment rather than stranding it.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    def test_truncated_stray_is_replaced(self):
        array = np.arange(64, dtype=np.float64)
        from multiprocessing import shared_memory

        name = shm._segment_name("unit-stray")
        stray = shared_memory.SharedMemory(name=name, create=True, size=8)
        stray.close()
        ref = shm.share("unit-stray", array)
        try:
            assert isinstance(ref, shm.ShmArray)
            assert ref.resolve().tobytes() == array.tobytes()
        finally:
            shm.release(ref)

    def test_unique_keys_never_collide(self):
        keys = {shm.unique_key("unit") for _ in range(32)}
        assert len(keys) == 32


class TestLeakDetection:
    def test_unreleased_segment_is_reported_and_unlinked(self):
        ref = shm.share("unit-leak", np.ones(16))
        assert ref.name in shm.leaked_segments()
        with pytest.warns(RuntimeWarning, match="leaked shared-memory"):
            leaked = shm.cleanup(warn=True)
        assert leaked == [ref.name]
        assert shm.owned_count() == 0
        assert shm.leaked_segments() == []

    def test_balanced_campaign_reports_no_leaks(self):
        ref = shm.share("unit-balanced", np.ones(16))
        shm.release(ref)
        assert shm.cleanup(warn=True) == []

    def test_shutdown_pools_runs_leak_detection(self):
        ref = shm.share("unit-shutdown-leak", np.ones(16))
        with pytest.warns(RuntimeWarning, match="leaked"):
            leaked = shutdown_pools()
        assert ref.name in leaked


# -- worker-crash recovery ---------------------------------------------
#
# A worker killed mid-map (mid-attach included: the kill lands before it
# touches the shared payload) must not strand segments or lose tasks:
# the executor discards the broken pool, re-runs the remainder serially
# in the parent, and shutdown still reports zero leaks.

_PARENT_PID = os.getpid()


def _crashy_square(shared, task):
    marker, payload = shared["marker"], shared["payload"]
    if task == 2 and os.getpid() != shared["parent"] and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed")
        os.kill(os.getpid(), signal.SIGKILL)
    return float(payload[task]) ** 2


class TestWorkerCrash:
    def test_killed_worker_retries_serially_no_leaked_segments(self, tmp_path):
        payload = np.arange(6, dtype=np.float64)
        marker = str(tmp_path / "crash-marker")
        shared = {"parent": os.getpid(), "marker": marker, "payload": payload}

        executor = Executor("process", jobs=2)
        with pytest.warns(RuntimeWarning, match="re-running the remainder serially"):
            results = executor.map(_crashy_square, list(range(6)), shared=shared)

        assert os.path.exists(marker), "the crash never happened"
        assert results == [float(x) ** 2 for x in payload]
        # The map's shared payload was released despite the broken pool,
        # and shutdown finds nothing to reclaim.
        assert shm.leaked_segments() == []
        assert shutdown_pools() == []

    def test_next_map_rebuilds_pool_after_crash(self, tmp_path):
        payload = np.arange(4, dtype=np.float64)
        marker = str(tmp_path / "crash-marker-2")
        shared = {"parent": os.getpid(), "marker": marker, "payload": payload}

        executor = Executor("process", jobs=2)
        with pytest.warns(RuntimeWarning):
            executor.map(_crashy_square, list(range(4)), shared=shared)
        # The broken pool was discarded: the next map gets a fresh one
        # and completes cleanly (the marker suppresses further crashes).
        results = executor.map(_crashy_square, list(range(4)), shared=shared)
        assert results == [float(x) ** 2 for x in payload]
        assert shm.leaked_segments() == []


class TestIdempotentUnlink:
    """The atexit hook and an explicit shutdown_pools() may both run
    after a worker crash; the segment must be unlinked exactly once and
    a missing segment file must never raise."""

    def test_release_after_external_removal_does_not_raise(self):
        from multiprocessing import shared_memory

        from repro import telemetry

        ref = shm.share("unit-ext-removed", np.ones(8))
        # Simulate a crashed worker's resource tracker (or a concurrent
        # cleanup) removing the segment file out from under the owner.
        foreign = shared_memory.SharedMemory(name=ref.name, create=False)
        foreign.unlink()
        foreign.close()
        with telemetry.scoped_registry() as reg:
            shm.release(ref)  # must not raise
            assert reg.counter_value("shm.unlink_missing") == 1
            assert reg.counter_value("shm.unlink") == 0
        assert shm.owned_count() == 0

    def test_cleanup_twice_unlinks_exactly_once(self):
        from repro import telemetry

        shm.share("unit-double-cleanup", np.ones(8))
        with telemetry.scoped_registry() as reg:
            shm.cleanup(warn=False)  # explicit shutdown path
            shm.cleanup(warn=False)  # atexit hook firing afterwards
            assert reg.counter_value("shm.unlink") == 1
            assert reg.counter_value("shm.unlink_missing") == 0
        assert shm.owned_count() == 0

    def test_release_then_cleanup_is_single_unlink(self):
        from repro import telemetry

        ref = shm.share("unit-release-cleanup", np.ones(8))
        with telemetry.scoped_registry() as reg:
            shm.release(ref)
            shm.cleanup(warn=False)
            assert reg.counter_value("shm.unlink") == 1


class TestResolveRefs:
    def test_walks_containers_and_hooks(self):
        array = np.arange(8.0)
        ref = shm.share("unit-resolve", array)
        try:

            class Context:
                def resolve_shm(self):
                    return "resolved"

            out = shm.resolve_refs({"a": [ref, 1], "b": (ref,), "c": Context()})
            assert out["a"][0].tobytes() == array.tobytes()
            assert out["a"][1] == 1
            assert out["b"][0].tobytes() == array.tobytes()
            assert out["c"] == "resolved"
            assert shm.resolve_refs("plain") == "plain"
        finally:
            shm.release(ref)
