"""Tests for the telemetry layer: registry semantics, the disabled
fast path, cross-backend aggregation, report output, and the
determinism contract (telemetry never changes results)."""

import json
import threading

import pytest

from repro import telemetry
from repro.dataset.collection import collect_dataset
from repro.devices.catalog import build_fleet
from repro.devices.measurement import MeasurementHarness
from repro.generator.suite import BenchmarkSuite
from repro.parallel import parallel_map


def _telemetry_task(shared, task):
    """Module-level task fn (picklable) that records metrics."""
    telemetry.count("task.count")
    telemetry.observe("task.value", float(task))
    return shared + task


class TestRegistry:
    def test_counters(self):
        reg = telemetry.MetricsRegistry()
        reg.count("a")
        reg.count("a", 4)
        assert reg.counter_value("a") == 5
        assert reg.counter_value("missing") == 0

    def test_gauges_last_write_wins(self):
        reg = telemetry.MetricsRegistry()
        reg.set_gauge("g", 1.5)
        reg.set_gauge("g", 2.5)
        assert reg.gauge_value("g") == 2.5
        assert reg.gauge_value("missing") is None

    def test_histograms(self):
        reg = telemetry.MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        stats = reg.histogram_stats("h")
        assert stats["count"] == 3
        assert stats["sum"] == 6.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["mean"] == 2.0
        assert reg.histogram_stats("missing") is None

    def test_span_records_elapsed_seconds(self):
        reg = telemetry.MetricsRegistry()
        with reg.span("timed"):
            pass
        stats = reg.histogram_stats("timed")
        assert stats["count"] == 1
        assert 0.0 <= stats["sum"] < 1.0

    def test_snapshot_merge_roundtrip(self):
        src = telemetry.MetricsRegistry()
        src.count("c", 3)
        src.set_gauge("g", 7.0)
        src.observe("h", 2.0)
        src.observe("h", 4.0)
        dst = telemetry.MetricsRegistry()
        dst.count("c", 1)
        dst.observe("h", 10.0)
        dst.merge(src.snapshot())
        assert dst.counter_value("c") == 4
        assert dst.gauge_value("g") == 7.0
        stats = dst.histogram_stats("h")
        assert stats["count"] == 3
        assert stats["sum"] == 16.0
        assert stats["max"] == 10.0

    def test_clear(self):
        reg = telemetry.MetricsRegistry()
        reg.count("c")
        reg.observe("h", 1.0)
        reg.clear()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_thread_safe_counters(self):
        reg = telemetry.MetricsRegistry()

        def hammer():
            for _ in range(500):
                reg.count("hits")
                reg.observe("vals", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("hits") == 4000
        assert reg.histogram_stats("vals")["count"] == 4000


class TestDisabledPath:
    def test_disabled_by_default_records_nothing(self):
        with telemetry.scoped_registry() as reg:
            telemetry.disable()
            telemetry.count("c")
            telemetry.observe("h", 1.0)
            telemetry.set_gauge("g", 1.0)
            with telemetry.span("s"):
                pass
            assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_span_is_a_shared_singleton(self):
        """The off path allocates nothing: every call is one object."""
        with telemetry.scoped_registry():
            telemetry.disable()
            assert telemetry.span("a") is telemetry.span("b")

    def test_scoped_registry_restores_state(self):
        before_reg = telemetry.registry()
        before_enabled = telemetry.enabled()
        with telemetry.scoped_registry() as reg:
            assert telemetry.enabled()
            assert telemetry.registry() is reg
        assert telemetry.registry() is before_reg
        assert telemetry.enabled() == before_enabled

    def test_configure_from_env(self):
        with telemetry.scoped_registry():
            telemetry.disable()
            assert telemetry.configure_from_env({}) is None
            assert not telemetry.enabled()
            assert telemetry.configure_from_env({"REPRO_TELEMETRY": "0"}) is None
            assert not telemetry.enabled()
            assert telemetry.configure_from_env({"REPRO_TELEMETRY": "1"}) is None
            assert telemetry.enabled()
            telemetry.disable()
            path = telemetry.configure_from_env({"REPRO_TELEMETRY": "out.jsonl"})
            assert path == "out.jsonl"
            assert telemetry.enabled()


class TestExecutorAggregation:
    @pytest.mark.parametrize("backend,jobs", [("serial", 1), ("thread", 3), ("process", 3)])
    def test_counters_aggregate_across_backends(self, backend, jobs):
        """Worker-side metrics reach the parent on every backend."""
        with telemetry.scoped_registry() as reg:
            results = parallel_map(
                _telemetry_task, list(range(12)), shared=100, backend=backend, jobs=jobs
            )
            assert results == [100 + i for i in range(12)]
            assert reg.counter_value("task.count") == 12
            stats = reg.histogram_stats("task.value")
            assert stats["count"] == 12
            assert stats["sum"] == float(sum(range(12)))
            assert reg.counter_value("parallel.tasks") == 12
            assert reg.counter_value("parallel.maps") == 1
            assert reg.histogram_stats("parallel.task")["count"] == 12
            assert reg.histogram_stats("parallel.worker_capacity")["count"] == 1

    def test_utilization_is_computable(self):
        with telemetry.scoped_registry() as reg:
            parallel_map(_telemetry_task, list(range(8)), shared=0, backend="thread", jobs=2)
            summary = telemetry.summarize(reg)
            util = summary["executor"]["utilization"]
            assert util is not None and 0.0 < util <= 1.5  # headroom for timer jitter


class TestDeterminismContract:
    def test_matrix_byte_identical_with_telemetry_on_and_off(self):
        """Acceptance: telemetry on vs. off, all three backends."""
        suite = BenchmarkSuite.default(n_random=4, seed=0)
        fleet = build_fleet(8, seed=0)
        harness = MeasurementHarness(seed=0)
        reference = collect_dataset(suite, fleet, harness, backend="serial")
        assert not telemetry.enabled()
        for backend, jobs in (("serial", 1), ("thread", 2), ("process", 2)):
            with telemetry.scoped_registry():
                observed = collect_dataset(
                    suite, fleet, harness, backend=backend, jobs=jobs
                )
            assert (
                observed.latencies_ms.tobytes() == reference.latencies_ms.tobytes()
            ), backend


class TestReport:
    def test_write_report_jsonl(self, tmp_path):
        with telemetry.scoped_registry() as reg:
            telemetry.count("cache.hit", 3)
            telemetry.count("cache.miss.cold", 1)
            telemetry.set_gauge("parallel.last_workers", 2)
            with telemetry.span("stage.total"):
                pass
            out = telemetry.write_report(tmp_path / "report.jsonl", reg)
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["schema"] == telemetry.REPORT_SCHEMA
        kinds = {line["type"] for line in lines}
        assert kinds == {"meta", "counter", "gauge", "histogram", "summary"}
        summary = lines[-1]
        assert summary["type"] == "summary"
        assert summary["cache"]["hits"] == 3
        assert summary["cache"]["hit_rate"] == 0.75
        assert "total" in summary["stages"]
        assert summary["wall_s"] >= 0.0

    def test_summarize_empty_registry(self):
        reg = telemetry.MetricsRegistry()
        summary = telemetry.summarize(reg)
        assert summary["cache"]["hit_rate"] is None
        assert summary["executor"]["utilization"] is None
        assert summary["stages"] == {}
        assert summary["admission"]["accepted"] == 0
        assert summary["admission"]["reject_reasons"] == {}

    def test_summarize_admission_block(self):
        with telemetry.scoped_registry() as reg:
            telemetry.count("admission.accepted", 5)
            telemetry.count("admission.rejected", 2)
            telemetry.count("admission.quarantined")
            telemetry.count("admission.rehabilitated")
            telemetry.count("admission.rejected.range", 2)
            telemetry.count("admission.rejected.speed")
            telemetry.count("adversary.devices", 3)
        admission = telemetry.summarize(reg)["admission"]
        assert admission["accepted"] == 5
        assert admission["rejected"] == 2
        assert admission["quarantined"] == 1
        assert admission["rehabilitated"] == 1
        assert admission["adversary_devices"] == 3
        assert admission["reject_reasons"] == {"range": 2, "speed": 1}
