"""Tests for the three signature-set selection strategies."""

import numpy as np
import pytest

from repro.core.signature import (
    mutual_information_selection,
    random_selection,
    select_signature_set,
    spearman_correlation_matrix,
    spearman_selection,
)


def _latency_matrix(seed=0, n_devices=40, n_networks=20):
    """Synthetic matrix with two redundant groups + independent nets."""
    rng = np.random.default_rng(seed)
    speed = rng.uniform(1.0, 5.0, size=n_devices)
    matrix = np.empty((n_devices, n_networks))
    for j in range(n_networks):
        if j < 8:  # group A: scale with device speed
            matrix[:, j] = speed * (j + 1) * (1 + 0.01 * rng.normal(size=n_devices))
        elif j < 16:  # group B: scale with inverse-ish profile
            matrix[:, j] = (6.0 - speed) * (j + 1) * (1 + 0.01 * rng.normal(size=n_devices))
        else:  # independent noise networks
            matrix[:, j] = rng.uniform(1, 10, size=n_devices)
    return matrix


class TestRandomSelection:
    def test_size_and_uniqueness(self):
        chosen = random_selection(_latency_matrix(), 5, rng=0)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5
        assert all(0 <= i < 20 for i in chosen)

    def test_deterministic_per_seed(self):
        m = _latency_matrix()
        assert random_selection(m, 5, rng=1) == random_selection(m, 5, rng=1)

    def test_seeds_vary(self):
        m = _latency_matrix()
        sets = {tuple(random_selection(m, 5, rng=s)) for s in range(10)}
        assert len(sets) > 1

    def test_full_size_allowed(self):
        chosen = random_selection(_latency_matrix(), 20, rng=0)
        assert chosen == list(range(20))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            random_selection(_latency_matrix(), 0)
        with pytest.raises(ValueError):
            random_selection(_latency_matrix(), 21)


class TestMISSelection:
    def test_size_and_range(self):
        chosen = mutual_information_selection(_latency_matrix(), 4, rng=0)
        assert len(chosen) == len(set(chosen)) == 4

    def test_covers_both_redundant_groups(self):
        """MIS should pick from both correlated groups rather than
        doubling up inside one."""
        m = _latency_matrix()
        chosen = mutual_information_selection(m, 2, rng=3)
        groups = {0 if i < 8 else (1 if i < 16 else 2) for i in chosen}
        assert len(groups) == 2

    def test_deterministic_per_seed(self):
        m = _latency_matrix()
        a = mutual_information_selection(m, 4, rng=5)
        b = mutual_information_selection(m, 4, rng=5)
        assert a == b

    def test_single_network(self):
        assert len(mutual_information_selection(_latency_matrix(), 1, rng=0)) == 1


class TestSCCSSelection:
    def test_correlation_matrix_properties(self):
        rho = spearman_correlation_matrix(_latency_matrix())
        assert rho.shape == (20, 20)
        assert np.allclose(np.diag(rho), 1.0)
        assert np.allclose(rho, rho.T)
        # Within-group correlations are near-perfect.
        assert rho[0, 1] > 0.95
        assert abs(rho[0, 17]) < 0.6

    def test_picks_cover_groups(self):
        chosen = spearman_selection(_latency_matrix(), 2, gamma=0.9)
        groups = {0 if i < 8 else (1 if i < 16 else 2) for i in chosen}
        # The first pick covers one correlated group; the second must
        # come from outside it.
        assert len(groups) == 2

    def test_requested_size_always_returned(self):
        for size in (1, 3, 10, 20):
            assert len(spearman_selection(_latency_matrix(), size)) == size

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            spearman_selection(_latency_matrix(), 3, gamma=0.0)
        with pytest.raises(ValueError):
            spearman_selection(_latency_matrix(), 3, gamma=1.1)

    def test_deterministic(self):
        m = _latency_matrix()
        assert spearman_selection(m, 5) == spearman_selection(m, 5)


class TestDispatch:
    def test_dispatch_matches_direct_calls(self):
        m = _latency_matrix()
        assert select_signature_set(m, 3, "rs", rng=2) == random_selection(m, 3, rng=2)
        assert select_signature_set(m, 3, "mis", rng=2) == mutual_information_selection(
            m, 3, rng=2
        )
        assert select_signature_set(m, 3, "sccs") == spearman_selection(m, 3)

    def test_case_insensitive(self):
        m = _latency_matrix()
        assert select_signature_set(m, 3, "SCCS") == spearman_selection(m, 3)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown selection method"):
            select_signature_set(_latency_matrix(), 3, "genetic")

    def test_rejects_1d_matrix(self):
        with pytest.raises(ValueError):
            select_signature_set(np.ones(10), 2, "rs")


class TestMissingRows:
    """Selection on matrices with quarantined (NaN) device rows."""

    @pytest.mark.parametrize("method", ["rs", "mis", "sccs"])
    def test_nan_rows_are_masked_not_ranked(self, method):
        m = _latency_matrix()
        holed = m.copy()
        holed[3, :] = np.nan  # quarantined device
        holed[17, 5] = np.nan  # partially measured device
        chosen = select_signature_set(holed, 3, method, rng=0)
        masked = m[[i for i in range(m.shape[0]) if i not in (3, 17)]]
        assert chosen == select_signature_set(masked, 3, method, rng=0)
        assert len(chosen) == len(set(chosen)) == 3

    @pytest.mark.parametrize("method", ["rs", "mis", "sccs"])
    def test_all_rows_missing_raises(self, method):
        holed = _latency_matrix()
        holed[:, 2] = np.nan  # one missing cell in every device row
        with pytest.raises(ValueError, match="missing"):
            select_signature_set(holed, 3, method, rng=0)

    def test_inf_still_rejected(self):
        m = _latency_matrix()
        m[0, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            select_signature_set(m, 3, "mis", rng=0)

    def test_correlation_matrix_masks_nan_rows(self):
        m = _latency_matrix()
        holed = m.copy()
        holed[5, :] = np.nan
        rho = spearman_correlation_matrix(holed)
        keep = [i for i in range(m.shape[0]) if i != 5]
        assert np.allclose(rho, spearman_correlation_matrix(m[keep]))
        assert np.isfinite(rho).all()


class TestSelectionMemoization:
    """Integer-seeded selections are memoized; results and RNG stream
    effects must be indistinguishable from a fresh computation."""

    def test_mis_memo_hit_matches_fresh(self):
        from repro.core.signature import clear_selection_memos

        matrix = _latency_matrix()
        clear_selection_memos()
        cold = mutual_information_selection(matrix, 6, rng=3)
        warm = mutual_information_selection(matrix, 6, rng=3)
        clear_selection_memos()
        fresh = mutual_information_selection(matrix, 6, rng=3)
        assert cold == warm == fresh

    def test_mis_prefix_extension(self):
        from repro.core.signature import clear_selection_memos

        matrix = _latency_matrix()
        clear_selection_memos()
        small = mutual_information_selection(matrix, 4, rng=7)
        large = mutual_information_selection(matrix, 9, rng=7)
        clear_selection_memos()
        assert mutual_information_selection(matrix, 9, rng=7) == large
        # The greedy picks are incremental: a smaller request is a
        # prefix (as a set — results are returned sorted).
        assert set(small) <= set(large)

    def test_generator_rng_not_memoized_and_stream_preserved(self):
        from repro.core.signature import clear_selection_memos

        matrix = _latency_matrix()
        clear_selection_memos()
        g1 = np.random.default_rng(11)
        a = mutual_information_selection(matrix, 5, rng=g1)
        after_a = g1.integers(1 << 30)
        g2 = np.random.default_rng(11)
        b = mutual_information_selection(matrix, 5, rng=g2)
        after_b = g2.integers(1 << 30)
        # Same stream position afterwards: selection consumed exactly
        # the same number of draws both times (memo did not skip them).
        assert a == b
        assert after_a == after_b

    def test_spearman_matrix_memo_returns_copy(self):
        from repro.core.signature import clear_selection_memos

        matrix = _latency_matrix()
        clear_selection_memos()
        rho1 = spearman_correlation_matrix(matrix)
        rho2 = spearman_correlation_matrix(matrix)
        assert np.array_equal(rho1, rho2)
        assert rho1 is not rho2
        rho1[0, 0] = 99.0  # mutating a result must not poison the memo
        assert spearman_correlation_matrix(matrix)[0, 0] != 99.0


class TestSpearmanVectorization:
    """The single-rank-pass matrix path must match the O(n^2) pairwise
    spearmanr loop it replaced, within float tolerance."""

    def _pairwise_reference(self, matrix):
        from repro.core.signature import _mask_missing_rows
        from repro.ml.metrics import spearmanr

        matrix = _mask_missing_rows(np.asarray(matrix, dtype=float))
        n = matrix.shape[1]
        rho = np.eye(n)
        for i in range(n):
            for j in range(i + 1, n):
                rho[i, j] = rho[j, i] = spearmanr(matrix[:, i], matrix[:, j])
        return rho

    def test_matches_pairwise_on_random_matrices(self):
        from repro.core.signature import clear_selection_memos

        rng = np.random.default_rng(0)
        for _ in range(3):
            m = rng.normal(size=(35, 14)) * 50 + 100
            clear_selection_memos()
            assert np.allclose(
                spearman_correlation_matrix(m),
                self._pairwise_reference(m),
                atol=1e-12,
            )

    def test_ties_constant_columns_and_nan_rows(self):
        from repro.core.signature import clear_selection_memos

        rng = np.random.default_rng(1)
        m = rng.integers(0, 4, size=(30, 8)).astype(float)  # heavy ties
        m[:, 2] = 5.0  # constant column -> 0.0 off-diagonal
        m[:, 4] = m[:, 3]  # perfect correlation -> exactly 1.0
        m[rng.integers(30, size=4), rng.integers(8, size=4)] = np.nan
        clear_selection_memos()
        got = spearman_correlation_matrix(m)
        assert np.allclose(got, self._pairwise_reference(m), atol=1e-12)
        assert np.all(got[2, [0, 1, 3]] == 0.0)
        assert got[3, 4] == 1.0
        assert np.all(np.diag(got) == 1.0)
        assert np.all(np.abs(got) <= 1.0)

    def test_memo_still_returns_copies(self):
        from repro.core.signature import clear_selection_memos

        clear_selection_memos()
        m = _latency_matrix()
        first = spearman_correlation_matrix(m)
        first[0, 1] = 42.0
        assert spearman_correlation_matrix(m)[0, 1] != 42.0
