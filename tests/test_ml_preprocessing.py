"""Tests for repro.ml.preprocessing."""

import numpy as np
import pytest

from repro.ml.preprocessing import StandardScaler, one_hot
from repro.ml.preprocessing import one_hot_labels


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(3.0, 5.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_centered_not_scaled(self):
        X = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)
        assert np.isfinite(Z).all()

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            StandardScaler().transform(np.ones((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            StandardScaler().fit(np.ones(5))

    def test_transform_uses_train_statistics(self):
        X_train = np.array([[0.0], [2.0]])
        scaler = StandardScaler().fit(X_train)
        assert scaler.transform(np.array([[4.0]]))[0, 0] == pytest.approx(3.0)


class TestOneHot:
    def test_basic(self):
        v = one_hot(2, 5)
        assert v.tolist() == [0.0, 0.0, 1.0, 0.0, 0.0]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(5, 5)
        with pytest.raises(ValueError):
            one_hot(-1, 5)

    def test_labels_encoding(self):
        out = one_hot_labels(["b", "a"], vocabulary=["a", "b", "c"])
        assert out.shape == (2, 3)
        assert out[0].tolist() == [0.0, 1.0, 0.0]
        assert out[1].tolist() == [1.0, 0.0, 0.0]

    def test_labels_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown label"):
            one_hot_labels(["z"], vocabulary=["a"])
