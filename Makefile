# Convenience targets for the reproduction workflow.

.PHONY: install test bench examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/new_device_onboarding.py
	python examples/nas_latency_ranking.py
	python examples/collaborative_repository.py
	python examples/model_introspection.py

clean:
	rm -rf benchmarks/.cache benchmarks/results examples/.cache .repro-cache
	find . -name __pycache__ -type d -exec rm -rf {} +
