# Convenience targets for the reproduction workflow.

.PHONY: install test bench examples lint bench-smoke faults-smoke adversary-smoke serve-smoke chaos-smoke search-smoke perf-gate bench-gate bench-gate-update ci clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/new_device_onboarding.py
	python examples/nas_latency_ranking.py
	python examples/collaborative_repository.py
	python examples/model_introspection.py

# Ruff is optional locally (offline environments may not have it);
# CI always installs and enforces it.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "ruff not installed -- skipping lint (CI enforces it)"; \
	fi

bench-smoke:
	PYTHONPATH=src pytest benchmarks/ -q -k "fig09 or fig11"
	PYTHONPATH=src pytest benchmarks/test_perf_parallel_campaign.py -q
	PYTHONPATH=src pytest benchmarks/test_perf_train_path.py -q

# Fault-tolerance smoke: campaign under a canned FaultPlan, killed
# after K rows, resumed from the checkpoint; the final matrix must be
# byte-identical to the uninterrupted run (CI runs this in tier-1).
faults-smoke:
	python scripts/faults_smoke.py

# Byzantine-robustness smoke: collaborative campaign with 20% seeded
# unit-scale adversaries; admission control must reject >= 90% of the
# corrupted contributions, never reject an honest device, and keep the
# repository's R^2 within tolerance of the clean baseline (CI tier-1).
adversary-smoke:
	python scripts/adversary_smoke.py

# Serving-layer smoke: publish a checkpoint, drive the micro-batched
# prediction service with a mixed warm/cold stream, assert batched ==
# single-request predictions byte-for-byte, hot-swap atomicity and a
# clean shutdown drain (CI runs this in the serve-gate job).
serve-smoke:
	python scripts/serve_smoke.py

# Serving-resilience chaos smoke: overload bursts over a bounded queue,
# corrupt checkpoints landing under racing refreshers, seeded breaker
# trip -> probe -> recovery, and the clean-path byte-identity contract
# (faults disabled == plain service, digest-compared). CI tier-1.
chaos-smoke:
	python scripts/serve_chaos_smoke.py

# Search smoke: three-generation latency-constrained evolutionary
# search through the bulk query plane; seed-reproducible winner digest
# across serial/thread backends, bulk == per-request byte-for-byte,
# cache effectiveness in the telemetry summary (CI runs this in tier-1).
search-smoke:
	python scripts/search_smoke.py

# Consolidated perf gate, exactly as CI's perf-gate job runs it: one
# regression.py invocation over every committed BENCH_*.json baseline
# (adversarial, cache, campaign, search, serve, sharded, train),
# failing if any gated
# metric falls outside its tolerance band, with one merged telemetry
# report (see benchmarks/regression.py; CI enforces this on every PR).
perf-gate:
	PYTHONPATH=src python benchmarks/regression.py --telemetry-out benchmarks/results/perf-gate-telemetry.jsonl

# Back-compat alias for the pre-consolidation target name.
bench-gate: perf-gate

bench-gate-update:
	PYTHONPATH=src python benchmarks/regression.py --update

# Mirrors .github/workflows/ci.yml: lint -> tier-1 tests -> bench smoke
# -> regression gate. PYTHONPATH=src lets the pipeline run from a clean
# checkout without an editable install (CI installs the package instead).
ci: lint
	PYTHONPATH=src pytest -x -q
	$(MAKE) faults-smoke
	$(MAKE) adversary-smoke
	$(MAKE) serve-smoke
	$(MAKE) chaos-smoke
	$(MAKE) search-smoke
	$(MAKE) bench-smoke
	$(MAKE) perf-gate

clean:
	rm -rf benchmarks/.cache benchmarks/results examples/.cache .repro-cache
	find . -name __pycache__ -type d -exec rm -rf {} +
