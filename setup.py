"""Legacy setup shim: the offline environment lacks the `wheel` package,
so `pip install -e . --no-use-pep517` needs this file."""

from setuptools import setup

setup()
